"""Atomic persistence and the ``repro exp`` / ``repro bench`` CLI."""

import json
import os

import pytest

from repro.cli import main
from repro.experiments import append_document, atomic_write_json


class TestAtomicWrite:
    def test_write_and_read_back(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(str(path), {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}

    def test_no_temp_litter_on_success(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(str(path), [1, 2, 3])
        assert os.listdir(tmp_path) == ["doc.json"]

    def test_serialization_failure_preserves_the_old_file(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(str(path), {"committed": True})
        with pytest.raises(TypeError):
            atomic_write_json(str(path), {"bad": object()})
        # The committed baseline is intact and no temp file remains.
        assert json.loads(path.read_text()) == {"committed": True}
        assert os.listdir(tmp_path) == ["doc.json"]

    def test_append_promotes_single_document(self, tmp_path):
        path = tmp_path / "traj.json"
        atomic_write_json(str(path), {"bench": "x", "n": 1})
        traj = append_document(str(path), {"bench": "x", "n": 2})
        assert [d["n"] for d in traj] == [1, 2]
        assert json.loads(path.read_text()) == traj

    def test_append_starts_fresh_trajectory(self, tmp_path):
        path = tmp_path / "traj.json"
        traj = append_document(str(path), {"n": 1})
        assert traj == [{"n": 1}]


def _write_spec(tmp_path, payload, name="spec.json"):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


FAST_BATCH = {
    "name": "cli-fast",
    "budgets": {"throughput_ops_per_s": {"min": 1}},
    "experiments": [
        {"matrix": {"base": {"workload": "kv", "seed": 7,
                             "params": {"n_ops": 15, "n_keys": 8}},
                    "axes": {"libos": ["dpdk", "posix"],
                             "cores": [1, 2],
                             "fault_plan": ["reorder-dup-storm"]}}},
    ],
}


class TestExpCli:
    def test_run_appends_a_validated_trajectory(self, tmp_path, capsys):
        spec = _write_spec(tmp_path, FAST_BATCH)
        out = tmp_path / "BENCH_exp.json"
        assert main(["exp", "run", spec, "-o", str(out)]) == 0
        traj = json.loads(out.read_text())
        assert isinstance(traj, list) and len(traj) == 1
        doc = traj[0]
        assert doc["bench"] == "experiment"
        assert doc["name"] == "cli-fast"
        assert len(doc["rows"]) == 4
        assert {r["libos"] for r in doc["rows"]} == {"dpdk", "posix"}
        assert {r["cores"] for r in doc["rows"]} == {1, 2}
        assert all(r["fault_plan"] == "reorder-dup-storm"
                   for r in doc["rows"])
        capsys.readouterr()

    def test_run_twice_appends_two_documents(self, tmp_path, capsys):
        spec = _write_spec(tmp_path, FAST_BATCH)
        out = tmp_path / "BENCH_exp.json"
        assert main(["exp", "run", spec, "-o", str(out)]) == 0
        assert main(["exp", "run", spec, "-o", str(out)]) == 0
        assert len(json.loads(out.read_text())) == 2
        capsys.readouterr()

    def test_resume_skips_completed_runs(self, tmp_path, capsys):
        spec = _write_spec(tmp_path, FAST_BATCH)
        out = tmp_path / "BENCH_exp.json"
        assert main(["exp", "run", spec, "-o", str(out)]) == 0
        assert main(["exp", "run", spec, "-o", str(out), "--resume"]) == 0
        stdout = capsys.readouterr().out
        assert "4 cached" in stdout
        traj = json.loads(out.read_text())
        assert (json.dumps(traj[0]["rows"], sort_keys=True)
                == json.dumps(traj[1]["rows"], sort_keys=True))

    def test_violated_budget_blocks_the_append(self, tmp_path, capsys):
        bad = dict(FAST_BATCH, budgets={"rtt_mean_ns": {"max": 1}})
        spec = _write_spec(tmp_path, bad)
        out = tmp_path / "BENCH_exp.json"
        assert main(["exp", "run", spec, "-o", str(out)]) == 1
        assert not out.exists()
        assert "exceeds" in capsys.readouterr().err

    def test_validate_accepts_good_rejects_bad(self, tmp_path, capsys):
        spec = _write_spec(tmp_path, FAST_BATCH)
        out = tmp_path / "BENCH_exp.json"
        assert main(["exp", "run", spec, "-o", str(out)]) == 0
        assert main(["exp", "validate", str(out), spec]) == 0
        traj = json.loads(out.read_text())
        traj[0]["rows"][0]["metrics"]["throughput_ops_per_s"] = 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(traj))
        assert main(["exp", "validate", str(bad)]) == 1
        assert "below" in capsys.readouterr().err

    def test_validate_accepts_kv_scaling_baseline(self, capsys):
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        baseline = os.path.join(root, "BENCH_kv_scaling.json")
        assert main(["exp", "validate", baseline]) == 0
        capsys.readouterr()

    def test_validate_rejects_bad_spec_file(self, tmp_path, capsys):
        spec = _write_spec(tmp_path, {"workload": "kv",
                                      "fault_plan": "no-such-plan"})
        assert main(["exp", "validate", spec]) == 1
        assert "fault_plan" in capsys.readouterr().err

    def test_list_expands_a_spec_file(self, tmp_path, capsys):
        spec = _write_spec(tmp_path, FAST_BATCH)
        assert main(["exp", "list", spec]) == 0
        assert "4 runs" in capsys.readouterr().out

    def test_list_shows_the_registry(self, capsys):
        assert main(["exp", "list"]) == 0
        stdout = capsys.readouterr().out
        for workload in ("kv", "kv-scaling", "chaos", "echo-rtt", "kv-rtt"):
            assert workload in stdout


class TestBenchAliasAtomicity:
    def test_append_interrupted_write_cannot_truncate(self, tmp_path,
                                                      monkeypatch, capsys):
        """A crash mid-append leaves the committed trajectory intact."""
        import repro.experiments.store as store

        out = tmp_path / "bench.json"
        args = ["bench", "kv-scaling", "--cores", "1", "--ops", "10",
                "-o", str(out)]
        assert main(args) == 0
        committed = out.read_text()

        real_fsync = os.fsync

        def exploding_fsync(fd):
            real_fsync(fd)
            raise OSError("simulated crash at the durability barrier")

        monkeypatch.setattr(store.os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="simulated crash"):
            main(args + ["--append"])
        # the old committed document is byte-identical, no temp litter
        assert out.read_text() == committed
        assert os.listdir(tmp_path) == ["bench.json"]
        capsys.readouterr()
