"""Tests for the ``params.reductions`` schema gate and offload workloads."""

import json

import pytest

from repro.experiments.schema import check_experiment_document
from repro.experiments.spec import ExperimentSpec, SpecBatch, load_spec_file
from repro.experiments.workloads import validate_spec, workload_names


def make_doc(rows, reductions=None, **params):
    if reductions is not None:
        params["reductions"] = reductions
    return {
        "bench": "experiment",
        "schema_version": 1,
        "name": "offload-gates",
        "params": params,
        "rows": rows,
    }


def make_row(run_id, workload="kv-offload", **metrics):
    return {
        "run_id": run_id, "workload": workload, "libos": "dpdk",
        "cores": 1, "fault_plan": "none", "seed": 1,
        "status": "ok", "ok": True, "failures": [], "metrics": metrics,
    }


class TestReductionsGate:
    def test_satisfied_reduction_passes(self):
        doc = make_doc(
            [make_row("r1", host_cpu_per_op_host_ns=3000,
                      host_cpu_per_op_offload_ns=700)],
            reductions=[{"metric": "host_cpu_per_op_offload_ns",
                         "baseline": "host_cpu_per_op_host_ns",
                         "min_factor": 2.0}])
        assert check_experiment_document(doc) == []

    def test_eroded_win_fails(self):
        doc = make_doc(
            [make_row("r1", host_cpu_per_op_host_ns=1000,
                      host_cpu_per_op_offload_ns=700)],
            reductions=[{"metric": "host_cpu_per_op_offload_ns",
                         "baseline": "host_cpu_per_op_host_ns",
                         "min_factor": 2.0}])
        errors = check_experiment_document(doc)
        assert len(errors) == 1
        assert "not 2x below" in errors[0]

    def test_min_factor_defaults_to_parity(self):
        doc = make_doc(
            [make_row("r1", a_ns=500, b_ns=499)],
            reductions=[{"metric": "a_ns", "baseline": "b_ns"}])
        errors = check_experiment_document(doc)
        assert len(errors) == 1  # 499 < 500 * 1.0

    def test_missing_metric_is_an_error_not_a_skip(self):
        doc = make_doc(
            [make_row("r1", host_cpu_per_op_host_ns=3000)],
            reductions=[{"metric": "host_cpu_per_op_offload_ns",
                         "baseline": "host_cpu_per_op_host_ns"}])
        errors = check_experiment_document(doc)
        assert any("missing or non-numeric" in e for e in errors)

    def test_workload_scoping_applies_rule_selectively(self):
        rows = [
            make_row("r1", workload="kv-offload",
                     host_cpu_per_op_host_ns=3000,
                     host_cpu_per_op_offload_ns=700),
            make_row("r2", workload="storelog-scan",
                     scan_cpu_per_record_host_ns=650,
                     scan_cpu_per_record_device_ns=10),
        ]
        doc = make_doc(
            rows,
            reductions=[
                {"workload": "kv-offload",
                 "metric": "host_cpu_per_op_offload_ns",
                 "baseline": "host_cpu_per_op_host_ns", "min_factor": 2.0},
                {"workload": "storelog-scan",
                 "metric": "scan_cpu_per_record_device_ns",
                 "baseline": "scan_cpu_per_record_host_ns",
                 "min_factor": 5.0},
            ])
        assert check_experiment_document(doc) == []

    def test_rule_matching_no_rows_is_an_error(self):
        doc = make_doc(
            [make_row("r1", a=1, b=2)],
            reductions=[{"workload": "no-such-workload",
                         "metric": "a", "baseline": "b"}])
        errors = check_experiment_document(doc)
        assert any("no rows matched" in e for e in errors)

    def test_malformed_rule_reported(self):
        doc = make_doc([make_row("r1", a=1)],
                       reductions=[{"metric": "a"}])
        errors = check_experiment_document(doc)
        assert any("expected {'metric', 'baseline'" in e for e in errors)

    def test_non_positive_factor_reported(self):
        doc = make_doc(
            [make_row("r1", a=1, b=2)],
            reductions=[{"metric": "a", "baseline": "b", "min_factor": 0}])
        errors = check_experiment_document(doc)
        assert any("min_factor" in e for e in errors)

    def test_reductions_must_be_a_list(self):
        doc = make_doc([make_row("r1", a=1)], reductions={"metric": "a"})
        errors = check_experiment_document(doc)
        assert any("params.reductions is not a list" in e for e in errors)


class TestSpecThreading:
    def test_batch_params_carry_reductions(self):
        spec = ExperimentSpec(workload="kv-offload", libos="dpdk")
        rules = [{"metric": "a", "baseline": "b", "min_factor": 2.0}]
        batch = SpecBatch("b", [spec], reductions=rules)
        assert batch.params()["reductions"] == rules

    def test_load_spec_file_accepts_reductions(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "t",
            "reductions": [{"metric": "a", "baseline": "b"}],
            "experiments": [{"workload": "kv-offload", "libos": "dpdk"}],
        }))
        batch = load_spec_file(str(path))
        assert batch.reductions == [{"metric": "a", "baseline": "b"}]
        assert "reductions" in batch.params()

    def test_committed_offload_spec_loads(self):
        import os
        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "experiments", "kv_offload.json")
        batch = load_spec_file(path)
        assert len(batch.reductions) == 2
        workloads = {s.workload for s in batch.specs}
        assert workloads == {"kv-offload", "storelog-scan"}


class TestOffloadWorkloadRegistry:
    def test_workloads_registered(self):
        names = workload_names()
        assert "kv-offload" in names
        assert "storelog-scan" in names

    def test_kv_offload_validation(self):
        ok = ExperimentSpec(workload="kv-offload", libos="dpdk")
        assert validate_spec(ok) is None
        for bad in (
            ExperimentSpec(workload="kv-offload", libos="posix"),
            ExperimentSpec(workload="kv-offload", libos="dpdk", cores=2),
            ExperimentSpec(workload="kv-offload", libos="dpdk",
                           fault_plan="nic_storm"),
        ):
            assert validate_spec(bad) is not None

    def test_storelog_scan_validation(self):
        ok = ExperimentSpec(workload="storelog-scan", libos="spdk")
        assert validate_spec(ok) is None
        bad = ExperimentSpec(workload="storelog-scan", libos="dpdk")
        assert validate_spec(bad) is not None
