"""Lint: counter names must come from the registry, not inline strings.

Every hot-path counter name lives in :mod:`repro.telemetry.names`; call
sites bump them through a :class:`~repro.sim.trace.CounterScope` handle.
A raw ``count("literal")`` reintroduces the stringly-typed API this
repo migrated away from - typos silently mint new counters and golden
signatures drift.  This test greps ``src/`` so CI catches regressions.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: ``.count("...")`` / ``.count('...')`` with a string literal first arg
RAW_COUNT = re.compile(r"""\.count\(\s*(["'])""")

#: the registry itself is the one place string literals belong
ALLOWED = {SRC / "telemetry" / "names.py"}


def offending_lines():
    hits = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if RAW_COUNT.search(line):
                hits.append("%s:%d: %s"
                            % (path.relative_to(SRC.parent.parent),
                               lineno, line.strip()))
    return hits


def test_no_raw_counter_name_literals():
    hits = offending_lines()
    assert not hits, (
        "raw counter-name literals found; use repro.telemetry.names "
        "constants via a tracer scope instead:\n" + "\n".join(hits))


def test_registry_is_the_only_allowed_home():
    # Guard the guard: the registry exists and actually defines names.
    names = (SRC / "telemetry" / "names.py").read_text()
    assert re.search(r'^[A-Z][A-Z0-9_]* = "', names, re.M)
