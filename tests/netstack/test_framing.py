"""Tests for length-prefix framing and partial-inspection accounting."""

import pytest

from repro.netstack.framing import Deframer, FramingError, frame_message


def test_frame_roundtrip_single_feed():
    d = Deframer()
    assert d.feed(frame_message(b"atomic-unit")) == [b"atomic-unit"]


def test_multiple_messages_one_chunk():
    d = Deframer()
    chunk = frame_message(b"one") + frame_message(b"two") + frame_message(b"three")
    assert d.feed(chunk) == [b"one", b"two", b"three"]


def test_message_split_across_chunks():
    d = Deframer()
    raw = frame_message(b"0123456789")
    assert d.feed(raw[:3]) == []
    assert d.feed(raw[3:7]) == []
    assert d.feed(raw[7:]) == [b"0123456789"]


def test_partial_inspections_counted():
    d = Deframer()
    raw = frame_message(b"0123456789")
    d.feed(raw[:5])
    d.feed(raw[5:8])
    d.feed(raw[8:])
    assert d.partial_inspections == 2
    assert d.messages_out == 1


def test_empty_message_allowed():
    d = Deframer()
    assert d.feed(frame_message(b"")) == [b""]


def test_byte_at_a_time():
    d = Deframer()
    raw = frame_message(b"slow")
    out = []
    for i in range(len(raw)):
        out.extend(d.feed(raw[i:i + 1]))
    assert out == [b"slow"]
    assert d.partial_inspections == len(raw) - 1


def test_desync_detected():
    d = Deframer()
    with pytest.raises(FramingError):
        d.feed(b"\xff\xff\xff\xff-garbage")


def test_oversized_message_rejected_at_source():
    with pytest.raises(FramingError):
        frame_message(b"x" * (64 * 1024 * 1024 + 1))


def test_pending_reflects_partial_state():
    d = Deframer()
    assert not d.pending()
    d.feed(frame_message(b"abc")[:2])
    assert d.pending()
    d.feed(frame_message(b"abc")[2:])
    assert not d.pending()


def test_counters_track_bytes_and_messages():
    d = Deframer()
    raw = frame_message(b"xyz")
    d.feed(raw)
    assert d.bytes_in == len(raw)
    assert d.messages_out == 1
