"""TCP integration tests: handshake, transfer, ordering, loss, close."""

import pytest

from repro.netstack.tcp import (
    CLOSE_WAIT,
    CLOSED,
    ESTABLISHED,
    FIN_WAIT_2,
    TIME_WAIT,
    TcpError,
)

from ..conftest import make_net_pair


def connect(w, a, b, port=80):
    """Handshake helper: returns (client_conn, server_conn)."""
    listener = b.stack.tcp_listen(port)
    client = a.stack.tcp_connect("10.0.0.2", port)
    w.run()
    server = listener.accept_nb()
    assert server is not None, "accept queue empty after handshake"
    return client, server


class TestHandshake:
    def test_three_way_handshake_establishes_both_ends(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        assert client.state == ESTABLISHED
        assert server.state == ESTABLISHED
        assert client.established.triggered
        assert server.established.triggered

    def test_mss_negotiated_to_minimum(self):
        w, a, b = make_net_pair()
        listener = b.stack.tcp_listen(80)
        client = a.stack.tcp_connect("10.0.0.2", 80)
        client.mss = 500  # before SYN would normally apply; set via connect path
        w.run()
        server = listener.accept_nb()
        assert server.mss <= 1460

    def test_connect_to_closed_port_resets(self):
        w, a, b = make_net_pair()
        client = a.stack.tcp_connect("10.0.0.2", 81)
        w.run()
        assert client.error is not None
        assert client.state == CLOSED
        assert w.tracer.get("server.stack.tcp_rst_sent") == 1

    def test_syn_lost_is_retransmitted(self):
        w, a, b = make_net_pair(drop_rate=0.4, seed=3)
        listener = b.stack.tcp_listen(80)
        client = a.stack.tcp_connect("10.0.0.2", 80)
        w.run()
        # Eventually establishes despite drops.
        assert client.state == ESTABLISHED

    def test_duplicate_listen_rejected(self):
        w, _a, b = make_net_pair()
        b.stack.tcp_listen(80)
        with pytest.raises(ValueError):
            b.stack.tcp_listen(80)


class TestTransfer:
    def test_small_send_arrives_in_order(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        client.send(b"hello tcp")
        w.run()
        assert server.recv() == b"hello tcp"

    def test_bidirectional_transfer(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        client.send(b"ping")
        w.run()
        assert server.recv() == b"ping"
        server.send(b"pong")
        w.run()
        assert client.recv() == b"pong"

    def test_large_transfer_segments_at_mss(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        payload = bytes(range(256)) * 100  # 25600 bytes > MSS
        client.send(payload)
        w.run()
        received = server.recv()
        assert received == payload
        assert w.tracer.get("client.stack.tcp_segments_tx") > len(payload) // 1460

    def test_multiple_sends_coalesce_into_stream(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        for chunk in (b"a", b"bb", b"ccc"):
            client.send(chunk)
        w.run()
        assert server.recv() == b"abbccc"

    def test_recv_respects_max_bytes(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        client.send(b"0123456789")
        w.run()
        assert server.recv(4) == b"0123"
        assert server.recv(100) == b"456789"

    def test_recv_signal_fires_on_data(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        seen = []

        def waiter():
            yield server.recv_signal()
            seen.append(server.recv())

        w.sim.spawn(waiter())
        w.sim.call_in(10_000, client.send, b"later")
        w.run()
        assert seen == [b"later"]

    def test_transfer_survives_heavy_loss(self):
        w, a, b = make_net_pair(drop_rate=0.25, seed=11)
        client, server = connect(w, a, b)
        payload = b"L" * 40000
        client.send(payload)
        w.run()
        assert server.recv() == payload
        assert w.tracer.get("client.stack.tcp_retransmits") > 0

    def test_send_on_unestablished_connection_rejected(self):
        w, a, b = make_net_pair()
        b.stack.tcp_listen(80)
        client = a.stack.tcp_connect("10.0.0.2", 80)
        with pytest.raises(TcpError):
            client.send(b"too early")


class TestFlowControl:
    def test_receiver_window_limits_sender(self):
        w, a, b = make_net_pair()
        listener = b.stack.tcp_listen(80, recv_capacity=2000)
        client = a.stack.tcp_connect("10.0.0.2", 80)
        w.run()
        server = listener.accept_nb()
        payload = b"W" * 10000
        received = []

        def slow_consumer():
            while sum(len(c) for c in received) < len(payload):
                yield server.recv_signal()
                chunk = server.recv(500)
                if chunk:
                    received.append(chunk)
                yield w.sim.timeout(50_000)  # slow application drain

        w.sim.spawn(slow_consumer())
        client.send(payload)
        w.run()
        assert b"".join(received) == payload
        # The sender never overran what the receiver advertised.
        assert w.tracer.get("server.stack.tcp_window_overrun_trimmed") == 0

    def test_zero_window_recovers_via_updates(self):
        w, a, b = make_net_pair()
        listener = b.stack.tcp_listen(80, recv_capacity=1000)
        client = a.stack.tcp_connect("10.0.0.2", 80)
        w.run()
        server = listener.accept_nb()
        client.send(b"Z" * 5000)
        # Bounded run (an unconsumed zero-window connection probes forever).
        w.run(until=w.sim.now + 2_000_000)
        # Stalled: receiver full, sender queue non-empty, probing.
        assert server.readable_bytes <= 1000
        assert len(client._send_queue) > 0
        assert w.tracer.get("client.stack.tcp_window_probes") > 0

        collected = []

        def drain():
            while sum(len(c) for c in collected) < 5000:
                yield server.recv_signal()
                chunk = server.recv()
                if chunk:
                    collected.append(chunk)
                yield w.sim.timeout(10_000)

        w.sim.spawn(drain())
        w.run()
        assert b"".join(collected) == b"Z" * 5000


class TestClose:
    def test_graceful_close_both_directions(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        client.close()
        w.run()
        assert server.peer_closed
        assert server.state == CLOSE_WAIT
        assert client.state == FIN_WAIT_2
        server.close()
        w.run()
        assert server.state == CLOSED
        assert client.state in (TIME_WAIT, CLOSED)

    def test_close_flushes_pending_data_first(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        client.send(b"final words")
        client.close()
        w.run()
        assert server.recv() == b"final words"
        assert server.peer_closed

    def test_send_after_close_rejected(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        client.close()
        with pytest.raises(TcpError):
            client.send(b"zombie")

    def test_abort_resets_peer(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        client.abort()
        w.run()
        assert server.error is not None
        assert server.state == CLOSED

    def test_connection_table_cleaned_up(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        client.close()
        w.run()
        server.close()
        w.run()
        # TIME_WAIT expiry happens in sim time; run covers it.
        assert a.stack.tcp_connection_count == 0
        assert b.stack.tcp_connection_count == 0


class TestRtt:
    def test_rto_adapts_to_measured_rtt(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        client.send(b"sample")
        w.run()
        # A few microseconds RTT -> RTO should sit at the floor, far below max.
        assert client._srtt is not None
        assert client._srtt < 100_000
        assert client._rto >= client._srtt
