"""Wire-format unit tests: ethernet, ARP, IPv4, UDP, TCP segments."""

import pytest

from repro.netstack.arp import ARP_REPLY, ARP_REQUEST, ArpPacket
from repro.netstack.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.netstack.ipv4 import Ipv4Packet, PROTO_UDP
from repro.netstack.packet import (
    PacketError,
    bytes_to_ip,
    bytes_to_mac,
    internet_checksum,
    ip_to_bytes,
    mac_to_bytes,
)
from repro.netstack.tcp import ACK, PSH, SYN, TcpSegment
from repro.netstack.udp import UdpDatagram


class TestAddressCodecs:
    def test_mac_roundtrip(self):
        mac = "02:0a:ff:00:10:01"
        assert bytes_to_mac(mac_to_bytes(mac)) == mac

    def test_bad_mac_rejected(self):
        with pytest.raises(PacketError):
            mac_to_bytes("not-a-mac")
        with pytest.raises(PacketError):
            mac_to_bytes("02:00:00:00:00")
        with pytest.raises(PacketError):
            mac_to_bytes("zz:00:00:00:00:00")

    def test_ip_roundtrip(self):
        assert bytes_to_ip(ip_to_bytes("10.0.0.1")) == "10.0.0.1"

    def test_bad_ip_rejected(self):
        for bad in ("10.0.0", "256.1.1.1", "a.b.c.d", "1.2.3.4.5"):
            with pytest.raises(PacketError):
                ip_to_bytes(bad)


class TestChecksum:
    def test_known_vector(self):
        # RFC 1071 example data
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_checksum_of_packet_with_checksum_is_zero(self):
        data = b"\x45\x00\x00\x14" + b"\x00" * 16
        csum = internet_checksum(data)
        patched = data[:10] + bytes([csum >> 8, csum & 0xFF]) + data[12:]
        assert internet_checksum(patched) == 0

    def test_odd_length_padded(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")


class TestEthernet:
    def test_roundtrip(self):
        frame = EthernetFrame("02:00:00:00:00:02", "02:00:00:00:00:01",
                              ETHERTYPE_IPV4, b"payload")
        parsed = EthernetFrame.unpack(frame.pack())
        assert parsed == frame

    def test_too_short_rejected(self):
        with pytest.raises(PacketError):
            EthernetFrame.unpack(b"\x00" * 10)

    def test_len_includes_header(self):
        frame = EthernetFrame("02:00:00:00:00:02", "02:00:00:00:00:01",
                              ETHERTYPE_IPV4, b"12345")
        assert len(frame) == 14 + 5


class TestArp:
    def test_request_roundtrip(self):
        pkt = ArpPacket(ARP_REQUEST, "02:00:00:00:00:01", "10.0.0.1",
                        "00:00:00:00:00:00", "10.0.0.2")
        assert ArpPacket.unpack(pkt.pack()) == pkt

    def test_reply_roundtrip(self):
        pkt = ArpPacket(ARP_REPLY, "02:00:00:00:00:02", "10.0.0.2",
                        "02:00:00:00:00:01", "10.0.0.1")
        assert ArpPacket.unpack(pkt.pack()) == pkt

    def test_truncated_rejected(self):
        with pytest.raises(PacketError):
            ArpPacket.unpack(b"\x00" * 20)


class TestIpv4:
    def test_roundtrip(self):
        pkt = Ipv4Packet("10.0.0.1", "10.0.0.2", PROTO_UDP, b"hello", ident=7)
        parsed = Ipv4Packet.unpack(pkt.pack())
        assert (parsed.src, parsed.dst, parsed.proto, parsed.payload) == (
            "10.0.0.1", "10.0.0.2", PROTO_UDP, b"hello")
        assert parsed.ident == 7

    def test_checksum_verified(self):
        raw = bytearray(Ipv4Packet("10.0.0.1", "10.0.0.2", PROTO_UDP, b"x").pack())
        raw[8] ^= 0xFF  # corrupt TTL
        with pytest.raises(PacketError):
            Ipv4Packet.unpack(bytes(raw))

    def test_corruption_ignored_when_not_verifying(self):
        raw = bytearray(Ipv4Packet("10.0.0.1", "10.0.0.2", PROTO_UDP, b"x").pack())
        raw[8] ^= 0xFF
        pkt = Ipv4Packet.unpack(bytes(raw), verify_checksum=False)
        assert pkt.payload == b"x"

    def test_truncated_rejected(self):
        with pytest.raises(PacketError):
            Ipv4Packet.unpack(b"\x45\x00")

    def test_non_ipv4_rejected(self):
        raw = bytearray(Ipv4Packet("10.0.0.1", "10.0.0.2", PROTO_UDP, b"x").pack())
        raw[0] = (6 << 4) | 5
        with pytest.raises(PacketError):
            Ipv4Packet.unpack(bytes(raw), verify_checksum=False)


class TestUdp:
    def test_roundtrip(self):
        datagram = UdpDatagram(1111, 2222, b"data")
        parsed = UdpDatagram.unpack(datagram.pack("10.0.0.1", "10.0.0.2"))
        assert (parsed.src_port, parsed.dst_port, parsed.payload) == (1111, 2222, b"data")

    def test_truncated_rejected(self):
        with pytest.raises(PacketError):
            UdpDatagram.unpack(b"\x00\x01")

    def test_length_field_limits_payload(self):
        raw = UdpDatagram(1, 2, b"abcd").pack("10.0.0.1", "10.0.0.2")
        parsed = UdpDatagram.unpack(raw + b"trailing-garbage")
        assert parsed.payload == b"abcd"


class TestTcpSegment:
    def test_roundtrip_with_payload(self):
        seg = TcpSegment(80, 12345, seq=1000, ack=2000, flags=PSH | ACK,
                         window=8192, payload=b"GET /")
        parsed = TcpSegment.unpack(seg.pack("10.0.0.1", "10.0.0.2"))
        assert (parsed.src_port, parsed.dst_port) == (80, 12345)
        assert (parsed.seq, parsed.ack) == (1000, 2000)
        assert parsed.flags == PSH | ACK
        assert parsed.window == 8192
        assert parsed.payload == b"GET /"
        assert parsed.mss is None

    def test_syn_carries_mss_option(self):
        seg = TcpSegment(80, 12345, seq=0, ack=0, flags=SYN, window=100, mss=1460)
        parsed = TcpSegment.unpack(seg.pack("10.0.0.1", "10.0.0.2"))
        assert parsed.mss == 1460
        assert parsed.flags & SYN

    def test_sequence_numbers_wrap_32_bits(self):
        seg = TcpSegment(1, 2, seq=2**32 + 5, ack=2**33 + 9, flags=ACK, window=1)
        parsed = TcpSegment.unpack(seg.pack("10.0.0.1", "10.0.0.2"))
        assert parsed.seq == 5
        assert parsed.ack == 9

    def test_truncated_rejected(self):
        with pytest.raises(PacketError):
            TcpSegment.unpack(b"\x00" * 10)

    def test_flag_names(self):
        seg = TcpSegment(1, 2, 0, 0, SYN | ACK, 0)
        assert seg.flag_names() == "SYN|ACK"
