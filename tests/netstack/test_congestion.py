"""Tests for TCP congestion control (slow start, AIMD, decrease events)."""

from ..conftest import make_net_pair


def connect(w, a, b, port=80):
    listener = b.stack.tcp_listen(port)
    client = a.stack.tcp_connect("10.0.0.2", port)
    w.run()
    return client, listener.accept_nb()


class TestSlowStart:
    def test_cwnd_starts_at_iw10(self):
        w, a, b = make_net_pair()
        client, _server = connect(w, a, b)
        assert client.cwnd == 10 * client.mss

    def test_cwnd_grows_during_bulk_transfer(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        initial = client.cwnd
        client.send(b"g" * 60000)
        w.run()
        assert server.recv() == b"g" * 60000
        assert client.cwnd > initial
        assert client.cwnd_reductions == 0

    def test_cwnd_limits_initial_burst(self):
        """Only ~IW10 bytes leave before the first acks come back."""
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        sent_before = w.tracer.get("client.stack.tcp_segments_tx")
        client.send(b"h" * 60000)
        # Stop time just after the burst leaves, before acks return.
        w.run(until=w.sim.now + 3_000)
        burst = w.tracer.get("client.stack.tcp_segments_tx") - sent_before
        assert burst <= 10 + 1  # IW10 segments (+1 for rounding)
        w.run()
        assert server.recv() == b"h" * 60000


class TestDecrease:
    def test_loss_reduces_cwnd(self):
        w, a, b = make_net_pair(drop_rate=0.15, seed=5)
        client, server = connect(w, a, b)
        payload = b"l" * 80000
        client.send(payload)
        w.run()
        assert server.recv() == payload
        assert client.cwnd_reductions > 0
        assert w.tracer.get("client.stack.tcp_cwnd_reductions") > 0

    def test_rto_collapses_to_one_mss(self):
        w, a, b = make_net_pair()
        client, _server = connect(w, a, b)
        client.snd_nxt = client.snd_una + 5 * client.mss  # fake outstanding
        client._congestion_event(to_one_mss=True)
        assert client.cwnd == client.mss
        assert client.ssthresh == (5 * client.mss) // 2
        client.snd_nxt = client.snd_una  # restore

    def test_fast_retransmit_halves_not_collapses(self):
        w, a, b = make_net_pair()
        client, _server = connect(w, a, b)
        client.snd_nxt = client.snd_una + 8 * client.mss
        client._congestion_event(to_one_mss=False)
        assert client.cwnd == client.ssthresh == 4 * client.mss
        client.snd_nxt = client.snd_una

    def test_recovery_reopens_window(self):
        """After a lossy phase the transfer still completes and cwnd has
        re-grown past one MSS."""
        w, a, b = make_net_pair(drop_rate=0.2, seed=9)
        client, server = connect(w, a, b)
        payload = b"r" * 50000
        client.send(payload)
        w.run()
        assert server.recv() == payload
        assert client.cwnd > client.mss
