"""Edge cases in the NetStack glue: demux, RSTs, ports, filtering."""

import pytest

from repro.netstack.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.netstack.ipv4 import Ipv4Packet
from repro.netstack.tcp import ACK, PSH, TcpSegment

from ..conftest import make_net_pair


class TestFrameFiltering:
    def test_wrong_mac_dropped(self):
        w, a, b = make_net_pair()
        frame = EthernetFrame("02:ff:ff:ff:ff:ff", a.stack.mac,
                              ETHERTYPE_IPV4, b"payload-unused")
        b.stack.rx_frame(frame.pack())
        assert w.tracer.get("server.stack.rx_wrong_mac") == 1

    def test_unknown_ethertype_counted(self):
        w, a, b = make_net_pair()
        frame = EthernetFrame(b.stack.mac, a.stack.mac,
                              0x86DD, b"ipv6-we-dont-speak")
        b.stack.rx_frame(frame.pack())
        assert w.tracer.get("server.stack.rx_unknown_ethertype") == 1

    def test_unknown_ip_proto_counted(self):
        w, a, b = make_net_pair()
        packet = Ipv4Packet("10.0.0.1", "10.0.0.2", 132, b"sctp?")
        frame = EthernetFrame(b.stack.mac, a.stack.mac,
                              ETHERTYPE_IPV4, packet.pack())
        b.stack.rx_frame(frame.pack())
        assert w.tracer.get("server.stack.rx_unknown_proto") == 1


class TestTcpDemux:
    def test_stray_data_segment_draws_rst(self):
        w, a, b = make_net_pair()
        a.stack.seed_arp("10.0.0.2", b.stack.mac)
        b.stack.seed_arp("10.0.0.1", a.stack.mac)
        # A data segment for a connection that does not exist.
        seg = TcpSegment(50000, 80, seq=1234, ack=5678,
                         flags=PSH | ACK, window=100, payload=b"ghost")
        packet = Ipv4Packet("10.0.0.1", "10.0.0.2", 6,
                            seg.pack("10.0.0.1", "10.0.0.2"))
        frame = EthernetFrame(b.stack.mac, a.stack.mac,
                              ETHERTYPE_IPV4, packet.pack())
        b.stack.rx_frame(frame.pack())
        w.run()
        assert w.tracer.get("server.stack.tcp_rst_sent") == 1

    def test_rst_segment_never_answered_with_rst(self):
        from repro.netstack.tcp import RST
        w, a, b = make_net_pair()
        a.stack.seed_arp("10.0.0.2", b.stack.mac)
        b.stack.seed_arp("10.0.0.1", a.stack.mac)
        seg = TcpSegment(50000, 80, seq=1, ack=1, flags=RST, window=0)
        packet = Ipv4Packet("10.0.0.1", "10.0.0.2", 6,
                            seg.pack("10.0.0.1", "10.0.0.2"))
        frame = EthernetFrame(b.stack.mac, a.stack.mac,
                              ETHERTYPE_IPV4, packet.pack())
        b.stack.rx_frame(frame.pack())
        w.run()
        assert w.tracer.get("server.stack.tcp_rst_sent") == 0


class TestEphemeralPorts:
    def test_allocations_are_distinct(self):
        w, a, b = make_net_pair()
        b.stack.tcp_listen(80)
        ports = set()
        for _ in range(10):
            conn = a.stack.tcp_connect("10.0.0.2", 80)
            ports.add(conn.local[1])
        assert len(ports) == 10
        assert all(49152 <= p <= 65535 for p in ports)

    def test_explicit_source_port_honoured(self):
        w, a, b = make_net_pair()
        b.stack.tcp_listen(80)
        conn = a.stack.tcp_connect("10.0.0.2", 80, src_port=55555)
        assert conn.local[1] == 55555
        w.run()
        assert conn.state == "ESTABLISHED"

    def test_duplicate_four_tuple_rejected(self):
        w, a, b = make_net_pair()
        b.stack.tcp_listen(80)
        a.stack.tcp_connect("10.0.0.2", 80, src_port=44444)
        with pytest.raises(ValueError):
            a.stack.tcp_connect("10.0.0.2", 80, src_port=44444)


class TestConnectionCounting:
    def test_connection_count_tracks_lifecycle(self):
        w, a, b = make_net_pair()
        b.stack.tcp_listen(80)
        conn = a.stack.tcp_connect("10.0.0.2", 80)
        w.run()
        assert a.stack.tcp_connection_count == 1
        assert b.stack.tcp_connection_count == 1
        conn.close()
        w.run()
        # Client side lingers in TIME_WAIT then clears; server closes on
        # its own close. Drive the server side shut too.
        for c in list(b.stack._tcp_conns.values()):
            c.close()
        w.run()
        assert a.stack.tcp_connection_count == 0
        assert b.stack.tcp_connection_count == 0
