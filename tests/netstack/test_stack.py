"""Integration tests: ARP resolution, UDP delivery, demux, stack plumbing."""

import pytest

from repro.netstack.packet import PacketError

from ..conftest import NetHost, World, make_net_pair


class TestArp:
    def test_first_packet_triggers_resolution_then_delivers(self):
        w, a, b = make_net_pair()
        got = []
        b.stack.udp_bind(53, lambda data, ip, port: got.append((data, ip, port)))
        a.stack.udp_send(9999, "10.0.0.2", 53, b"query")
        w.run()
        assert got == [(b"query", "10.0.0.1", 9999)]
        assert w.tracer.get("client.stack.arp_requests") == 1
        # Resolution is cached afterwards.
        assert a.stack.arp_table["10.0.0.2"] == b.stack.mac

    def test_second_packet_uses_cache(self):
        w, a, b = make_net_pair()
        got = []
        b.stack.udp_bind(53, lambda data, ip, port: got.append(data))
        a.stack.udp_send(9999, "10.0.0.2", 53, b"one")
        w.run()
        a.stack.udp_send(9999, "10.0.0.2", 53, b"two")
        w.run()
        assert got == [b"one", b"two"]
        assert w.tracer.get("client.stack.arp_requests") == 1

    def test_responder_learns_requester_address(self):
        w, a, b = make_net_pair()
        b.stack.udp_bind(53, lambda *args: None)
        a.stack.udp_send(9999, "10.0.0.2", 53, b"x")
        w.run()
        assert b.stack.arp_table["10.0.0.1"] == a.stack.mac

    def test_unresolvable_address_drops_after_retries(self):
        w, a, _b = make_net_pair()
        a.stack.udp_send(1, "10.0.0.250", 5, b"void")
        w.run()
        assert w.tracer.get("client.stack.arp_unresolved_drops") == 1
        assert w.tracer.get("client.stack.arp_requests") == 5

    def test_seed_arp_skips_resolution(self):
        w, a, b = make_net_pair()
        a.stack.seed_arp("10.0.0.2", b.stack.mac)
        got = []
        b.stack.udp_bind(7, lambda data, ip, port: got.append(data))
        a.stack.udp_send(7, "10.0.0.2", 7, b"direct")
        w.run()
        assert got == [b"direct"]
        assert w.tracer.get("client.stack.arp_requests") == 0


class TestUdp:
    def test_echo_roundtrip(self):
        w, a, b = make_net_pair()
        replies = []

        def server(data, src_ip, src_port):
            b.stack.udp_send(7, src_ip, src_port, data.upper())

        b.stack.udp_bind(7, server)
        a.stack.udp_bind(7777, lambda data, ip, port: replies.append(data))
        a.stack.udp_send(7777, "10.0.0.2", 7, b"hello")
        w.run()
        assert replies == [b"HELLO"]

    def test_unbound_port_counts_drop(self):
        w, a, b = make_net_pair()
        a.stack.udp_send(1, "10.0.0.2", 1234, b"noone")
        w.run()
        assert w.tracer.get("server.stack.udp_no_listener") == 1

    def test_double_bind_rejected(self):
        _, a, _ = make_net_pair()
        a.stack.udp_bind(80, lambda *a: None)
        with pytest.raises(ValueError):
            a.stack.udp_bind(80, lambda *a: None)

    def test_unbind_then_rebind(self):
        _, a, _ = make_net_pair()
        a.stack.udp_bind(80, lambda *a: None)
        a.stack.udp_unbind(80)
        a.stack.udp_bind(80, lambda *a: None)

    def test_oversized_datagram_rejected(self):
        w, a, b = make_net_pair()
        a.stack.seed_arp("10.0.0.2", b.stack.mac)
        with pytest.raises(PacketError):
            a.stack.udp_send(1, "10.0.0.2", 2, b"x" * 2000)

    def test_wrong_ip_filtered(self):
        w, a, b = make_net_pair()
        got = []
        b.stack.udp_bind(9, lambda data, ip, port: got.append(data))
        # Hand-deliver a frame addressed to b's MAC but the wrong IP.
        from repro.netstack.ethernet import ETHERTYPE_IPV4, EthernetFrame
        from repro.netstack.ipv4 import Ipv4Packet, PROTO_UDP
        from repro.netstack.udp import UdpDatagram

        datagram = UdpDatagram(1, 9, b"misdelivered")
        packet = Ipv4Packet("10.0.0.1", "10.9.9.9", PROTO_UDP,
                            datagram.pack("10.0.0.1", "10.9.9.9"))
        frame = EthernetFrame(b.stack.mac, a.stack.mac, ETHERTYPE_IPV4, packet.pack())
        b.stack.rx_frame(frame.pack())
        assert got == []
        assert w.tracer.get("server.stack.rx_wrong_ip") == 1


class TestStackCharging:
    def test_rx_and_tx_charge_cpu(self):
        w, a, b = make_net_pair()
        b.stack.udp_bind(7, lambda *args: None)
        a.stack.udp_send(7, "10.0.0.2", 7, b"x")
        w.run()
        # Client sent ARP + UDP (2 tx) and received ARP reply (1 rx).
        c = w.costs
        assert a.host.cpu.busy_ns == 2 * c.user_net_tx_ns + c.user_net_rx_ns

    def test_malformed_frame_counted(self):
        w, a, _b = make_net_pair()
        a.stack.rx_frame(b"\x01")
        assert w.tracer.get("client.stack.rx_malformed") == 1
