"""Tests for Nagle's algorithm / TCP_NODELAY."""

from ..conftest import make_net_pair


def connect(w, a, b, port=80):
    listener = b.stack.tcp_listen(port)
    client = a.stack.tcp_connect("10.0.0.2", port)
    w.run()
    return client, listener.accept_nb()


class TestNagle:
    def test_nodelay_default_sends_small_segments_immediately(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        before = w.tracer.get("client.stack.tcp_segments_tx")
        client.send(b"a")
        client.send(b"b")
        # Both tiny segments leave without waiting for acks.
        w.run(until=w.sim.now + 2_000)
        sent = w.tracer.get("client.stack.tcp_segments_tx") - before
        assert sent == 2
        w.run()
        assert server.recv() == b"ab"

    def test_nagle_holds_second_small_segment(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        client.nodelay = False
        before = w.tracer.get("client.stack.tcp_segments_tx")
        client.send(b"a")
        client.send(b"b")
        w.run(until=w.sim.now + 2_000)
        sent = w.tracer.get("client.stack.tcp_segments_tx") - before
        assert sent == 1  # the second byte is nagled
        assert w.tracer.get("client.stack.tcp_nagle_delays") >= 1
        # The ack for "a" releases "b"; everything still arrives.
        w.run()
        assert server.recv() == b"ab"

    def test_nagle_sends_full_mss_immediately(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        client.nodelay = False
        before = w.tracer.get("client.stack.tcp_segments_tx")
        client.send(b"x" * client.mss)
        client.send(b"y" * client.mss)
        w.run(until=w.sim.now + 3_000)
        sent = w.tracer.get("client.stack.tcp_segments_tx") - before
        assert sent == 2  # full segments are never delayed
        w.run()
        assert server.recv() == b"x" * client.mss + b"y" * client.mss

    def test_nagle_does_not_block_fin(self):
        w, a, b = make_net_pair()
        client, server = connect(w, a, b)
        client.nodelay = False
        client.send(b"last")
        client.close()
        w.run()
        assert server.recv() == b"last"
        assert server.peer_closed

    def test_nagle_increases_small_write_latency(self):
        def two_write_latency(nodelay):
            w, a, b = make_net_pair()
            client, server = connect(w, a, b)
            client.nodelay = nodelay
            start = w.sim.now
            client.send(b"a")
            client.send(b"b")
            done = {}

            def waiter():
                got = b""
                while len(got) < 2:
                    chunk = server.recv()
                    if chunk:
                        got += chunk
                        continue
                    yield server.recv_signal()
                done["at"] = w.sim.now

            w.sim.spawn(waiter())
            w.run()
            return done["at"] - start

        assert two_write_latency(False) > two_write_latency(True)
