"""Integration tests for the RSS-sharded serving path.

The tentpole claims, asserted end to end on a 4-shard world:

* flow steering and key partitioning agree (zero misrouted requests);
* every wake-up carries work owned by the woken shard (zero wasted and
  zero cross-shard wake-ups - the wake-one property at N workers);
* each shard's qtoken table closes its lifecycle identity;
* the work actually spreads: every shard serves requests on its own
  core, fed by its own NIC RX queue.
"""

import pytest

from repro.bench.runners import kv_rtt_sharded, kv_scaling_document
from repro.cluster import shard_workload, sharded_kv_client
from repro.sim.rand import Rng
from repro.sim.trace import LatencyStats
from repro.testbed import make_sharded_kv_world
from tools.check_bench import check_document

N_SHARDS = 4
OPS_PER_SHARD = 60


def run_sharded(n_shards=N_SHARDS, n_ops=OPS_PER_SHARD, drop_rate=0.0,
                seed=11):
    w, server, clients = make_sharded_kv_world(n_shards, seed=seed,
                                               drop_rate=drop_rate)
    server.start()
    rng = Rng(seed).fork_named("cluster-test")
    procs, results = [], []
    stats = LatencyStats("test")
    for i, client in enumerate(clients):
        ops = shard_workload(rng.fork(i), n_ops, i, n_shards,
                             n_keys=8, value_size=64)
        procs.append(w.sim.spawn(
            sharded_kv_client(client, server.ip, i, n_shards, ops,
                              port=server.port, stats=stats),
            name="testclient%d" % i))
    for proc in procs:
        w.sim.run_until_complete(proc, limit=10**13)
        results.append(proc.value[0])
    server.stop()
    return w, server, results


class TestShardedServing:
    def setup_method(self):
        self.w, self.server, self.results = run_sharded()

    def test_every_response_ok(self):
        for per_client in self.results:
            for response in per_client:
                if response is not None:      # GETs only
                    ok, _ = response
                    assert ok

    def test_every_shard_serves_its_own_flow(self):
        per_shard = self.server.per_shard_requests()
        assert len(per_shard) == N_SHARDS
        assert all(n > 0 for n in per_shard)
        assert sum(per_shard) == self.server.requests_served

    def test_no_misrouted_requests(self):
        assert self.server.misrouted == 0

    def test_wake_one_property(self):
        # Paper section 4.4 at N workers: qtoken wake-ups are targeted,
        # so no shard ever wakes without work or for another's work.
        assert self.server.wakeups > 0
        assert self.server.wasted_wakeups == 0
        assert self.server.cross_wakeups == 0

    def test_qtoken_identity_per_shard(self):
        for shard in self.server.shards:
            assert shard.qtoken_identity_ok(), (
                "shard %d leaked qtokens" % shard.index)

    def test_every_core_did_work(self):
        for shard in self.server.shards:
            assert shard.core.busy_ns > 0, (
                "core %d idle: work not spread" % shard.index)

    def test_every_rx_queue_saw_frames(self):
        for q in range(N_SHARDS):
            frames = self.w.tracer.get("server.dpdk0.rxq%d_frames" % q)
            assert frames > 0, "RX queue %d never used" % q


class TestShardedUnderChaos:
    """Drops force TCP retransmits; the shard invariants must survive."""

    def test_lossy_run_keeps_invariants(self):
        w, server, results = run_sharded(drop_rate=0.02, seed=23)
        assert server.requests_served == N_SHARDS * OPS_PER_SHARD
        assert server.misrouted == 0
        assert server.wasted_wakeups == 0
        assert server.cross_wakeups == 0
        assert server.qtoken_identity_ok()

    def test_lossy_run_is_deterministic(self):
        rows = [run_sharded(drop_rate=0.02, seed=23)[1].per_shard_requests()
                for _ in range(2)]
        assert rows[0] == rows[1]


class TestScalingBench:
    def test_throughput_scales_and_document_validates(self):
        doc = kv_scaling_document(core_counts=(1, 2), n_ops=40, seed=7)
        assert check_document(doc) == []
        one, two = doc["rows"]
        assert two["throughput_ops_per_s"] > one["throughput_ops_per_s"]

    def test_single_shard_degenerate_case(self):
        row = kv_rtt_sharded(1, n_ops=30, n_keys=8)
        assert row["cores"] == 1
        assert row["requests"] == 30
        assert row["wasted_wakeups"] == 0
        assert row["qtoken_identity_ok"] is True

    def test_mismatched_queue_count_rejected(self):
        from repro.cluster import ShardedKvServer
        w, server, _ = make_sharded_kv_world(2, seed=3)
        with pytest.raises(ValueError):
            ShardedKvServer(server.host, server.nic, "10.0.0.100", 4)

    def test_committed_baseline_still_validates(self):
        # The repo-root BENCH_kv_scaling.json is a persisted baseline;
        # regenerate with `python -m repro bench kv-scaling` if the
        # serving path legitimately changes.
        import json
        import os
        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "BENCH_kv_scaling.json")
        with open(path) as fh:
            doc = json.load(fh)
        assert check_document(doc) == []
        assert doc["schema_version"] == 2
        assert doc["params"]["core_counts"] == [1, 2, 4, 8, 16, 32]
        # The knee regression gate in test_scaling_knee.py asserts the
        # shape; here just pin that the batched sweep stayed flat.
        four = next(r for r in doc["rows"] if r["cores"] == 4)
        for row in doc["rows"]:
            if row["cores"] >= 8:
                assert row["rtt_mean_ns"] <= four["rtt_mean_ns"] * 1.05
