"""Regression gate for the 8-core scaling knee.

Before the batched fast path, one serial NIC TX pipeline throttled all
shards: at 8 cores throughput flattened (~781k ops/s) and mean RTT grew
to ~10 us while 4 cores sat at ~7 us.  With per-TX-queue pipelines and
doorbell coalescing the sweep is flat again.  These tests pin that
shape at the knee point so a regression fails loudly instead of as a
slow drift in the committed bench file.
"""

import pytest

from repro.bench.runners import (
    PER_OP_BUDGET_NS,
    PER_OP_SETUP_ALLOWANCE_NS,
    kv_rtt_sharded,
)

N_OPS = 80
# Marginal budget plus each shard's amortized connection-setup share
# (the same formula tools.check_bench gates the committed sweep with).
BUDGET_NS = PER_OP_BUDGET_NS + PER_OP_SETUP_ALLOWANCE_NS / N_OPS


@pytest.fixture(scope="module")
def four_and_eight():
    four = kv_rtt_sharded(4, n_ops=N_OPS, seed=13)
    eight = kv_rtt_sharded(8, n_ops=N_OPS, seed=13)
    return four, eight


class TestEightCoreKnee:
    def test_throughput_still_scales_past_four_cores(self, four_and_eight):
        four, eight = four_and_eight
        # Doubling the shards must keep scaling near-linearly; the old
        # serialized-TX knee capped this ratio well below 1.5x.
        ratio = (eight["throughput_ops_per_s"]
                 / four["throughput_ops_per_s"])
        assert ratio >= 1.7, "8-core throughput only %.2fx of 4-core" % ratio

    def test_rtt_flat_across_the_knee(self, four_and_eight):
        four, eight = four_and_eight
        assert eight["rtt_mean_ns"] <= four["rtt_mean_ns"] * 1.10, (
            "8-core RTT %.0f ns vs %.0f ns at 4 cores - the knee is back"
            % (eight["rtt_mean_ns"], four["rtt_mean_ns"]))

    def test_per_core_utilization_does_not_inflate(self, four_and_eight):
        # Shared-nothing scaling: adding shards must not make each core
        # work harder per op (that is what queueing behind a shared
        # pipeline looks like).
        four, eight = four_and_eight
        mean4 = sum(four["per_core_utilization"]) / 4
        mean8 = sum(eight["per_core_utilization"]) / 8
        assert mean8 <= mean4 * 1.15, (
            "per-core utilization rose %.3f -> %.3f across the knee"
            % (mean4, mean8))

    def test_per_op_cpu_within_budget_and_flat(self, four_and_eight):
        four, eight = four_and_eight
        for row in (four, eight):
            assert row["per_op_server_cpu_ns"] <= BUDGET_NS
        assert (eight["per_op_server_cpu_ns"]
                <= four["per_op_server_cpu_ns"] * 1.05)

    def test_batching_actually_engaged(self, four_and_eight):
        _four, eight = four_and_eight
        assert eight["doorbells_saved"] > 0
        assert eight["requests_per_wakeup"] >= 0.9

    def test_wake_hygiene_at_eight_cores(self, four_and_eight):
        _four, eight = four_and_eight
        assert eight["wasted_wakeups"] == 0
        assert eight["cross_shard_wakeups"] == 0
        assert eight["misrouted_requests"] == 0
        assert eight["qtoken_identity_ok"] is True
