"""The chain-replicated multi-host KV tier (repro.cluster.replica)."""

import pytest

from repro.cluster.client import ReplicatedKvClient
from repro.cluster.replica import (ClusterDirectory, ReplicaNode,
                                   decode_entry, encode_entry)
from repro.core.retry import RetryBudgetExceeded
from repro.core.types import DemiError
from repro.libos.rdma_libos import RdmaLibOS
from repro.rdma.cm import RdmaCm
from repro.sim.rand import Rng
from repro.telemetry import names

from ..conftest import World

_US = 1_000
_MS = 1_000_000
LIMIT = 3_000_000_000


def build_cluster(n_nodes=3, replication=3, n_chains=1, n_clients=1,
                  seed=42, **node_kw):
    world = World(seed=seed)
    cm = RdmaCm(world.sim)
    node_names = ["replica%d" % i for i in range(n_nodes)]
    directory = ClusterDirectory(world.tracer, node_names,
                                 replication=replication, n_chains=n_chains)
    rng = Rng(seed)
    nodes = [ReplicaNode(world, name, directory, cm,
                         rng=rng.fork_named(name), **node_kw)
             for name in node_names]
    clients = []
    for i in range(n_clients):
        host = world.add_host("cl%d" % i)
        nic = world.add_rdma(host)
        libos = RdmaLibOS(host, nic, cm, name="cl%d.catmint" % i)
        clients.append(ReplicatedKvClient(libos, directory,
                                          rng.fork_named("cl%d" % i)))
    for node in nodes:
        node.start()
    return world, directory, nodes, clients


def run_driver(world, gen):
    proc = world.sim.spawn(gen, name="test.driver")
    world.sim.run_until_complete(proc, limit=world.sim.now + LIMIT)
    return proc.value


class TestDirectory:
    def tracer(self):
        return World().tracer

    def test_chain_members_rotate_over_the_node_list(self):
        d = ClusterDirectory(self.tracer(), ["a", "b", "c", "d"],
                             replication=3, n_chains=4)
        assert d.chain_members(0) == ["a", "b", "c"]
        assert d.chain_members(1) == ["b", "c", "d"]
        assert d.chain_members(3) == ["d", "a", "b"]
        assert d.head(1) == "b" and d.tail(1) == "d"

    def test_death_splices_and_recruits_in_rotation_order(self):
        d = ClusterDirectory(self.tracer(), ["a", "b", "c", "d"],
                             replication=3, n_chains=4)
        d.report_dead("b")
        assert d.epoch == 1
        assert d.chain_members(0) == ["a", "c", "d"]  # spliced + recruited
        assert d.chain_members(1) == ["c", "d", "a"]  # new head
        d.report_dead("b")  # idempotent: no second epoch bump
        assert d.epoch == 1

    def test_replication_clamped_to_cluster_size(self):
        d = ClusterDirectory(self.tracer(), ["a", "b"], replication=5)
        assert d.chain_members(0) == ["a", "b"]

    def test_zero_replication_rejected(self):
        with pytest.raises(DemiError):
            ClusterDirectory(self.tracer(), ["a"], replication=0)


class TestEntryCodec:
    def test_roundtrip(self):
        for seq, key, value in [(1, b"k", b"v"), (2 ** 40, b"key-xyz", b""),
                                (7, b"", b"x" * 300)]:
            assert decode_entry(encode_entry(seq, key, value)) == (seq, key,
                                                                   value)


class TestHappyPath:
    def test_put_get_through_full_chain(self):
        world, directory, nodes, (client,) = build_cluster()
        out = {}

        def driver():
            yield world.sim.timeout(50 * _US)
            for i in range(8):
                yield from client.put(b"key-%d" % i, b"value-%d" % i)
            reads = []
            for i in range(8):
                found, value = yield from client.get(b"key-%d" % i)
                reads.append((found, bytes(value)))
            yield from client.close()
            out["reads"] = reads

        run_driver(world, driver())
        assert out["reads"] == [(True, b"value-%d" % i) for i in range(8)]
        # An acked write lives on EVERY chain member, applied == committed.
        for node in nodes:
            chain = node.chains[0]
            assert chain.applied == 8 and chain.committed == 8
            assert node.engine.get(b"key-0") is not None

    def test_multi_chain_places_keys_on_distinct_heads(self):
        world, directory, nodes, (client,) = build_cluster(
            n_chains=3, replication=2)
        keys = [b"mc-key-%02d" % i for i in range(24)]
        chains_hit = {directory.chain_for_key(k) for k in keys}
        assert chains_hit == {0, 1, 2}, "workload should span every chain"

        def driver():
            yield world.sim.timeout(50 * _US)
            for key in keys:
                yield from client.put(key, b"v:" + key)
            for key in keys:
                found, value = yield from client.get(key)
                assert found and bytes(value) == b"v:" + key
            yield from client.close()

        run_driver(world, driver())
        # replication=2: each chain lives on exactly its two members and
        # is absent from the third node.
        for chain_id in range(3):
            members = directory.chain_members(chain_id)
            assert len(members) == 2
            wrote = [k for k in keys if directory.chain_for_key(k) == chain_id]
            for node in nodes:
                chain = node.chains[chain_id]
                if node.name in members:
                    assert chain.applied == len(wrote)
                else:
                    assert chain.applied == 0

    def test_misrouted_request_answers_moved(self):
        """Reads must come from the tail: a GET aimed directly at the
        head (a stale client route) answers STATUS_MOVED instead of
        serving a possibly-uncommitted value."""
        from repro.apps.kvstore import encode_get
        from repro.cluster.replica import STATUS_MOVED

        world, directory, nodes, (client,) = build_cluster()
        libos = client.libos
        out = {}

        def driver():
            yield world.sim.timeout(50 * _US)
            yield from client.put(b"moved-key", b"moved-val")
            # Bypass the router: talk straight to the head.
            qd = yield from libos.socket()
            yield from libos.connect(qd, nodes[0].nic.addr, nodes[0].port)
            yield from libos.blocking_push(
                qd, libos.sga_alloc(encode_get(b"moved-key")))
            result = yield from libos.blocking_pop(qd)
            out["status"] = result.sga.tobytes()[0]
            yield from libos.close(qd)
            yield from client.close()

        run_driver(world, driver())
        assert out["status"] == STATUS_MOVED
        assert world.tracer.get("replica0.%s" % names.REPL_REDIRECTS) >= 1


class TestFailover:
    def crash(self, world, node, reports):
        world.sim.spawn(node.crash(report_to=reports),
                        name="%s.crash" % node.name)

    def test_tail_death_recruits_spare_and_replays_full_log(self):
        """replication=2 over 3 nodes: chain 0 is [replica0, replica1];
        killing the tail must recruit replica2 from scratch - the whole
        log replays into it and it becomes the new commit point."""
        world, directory, nodes, (client,) = build_cluster(replication=2)
        reports = []
        out = {}

        def driver():
            yield world.sim.timeout(50 * _US)
            for i in range(6):
                yield from client.put(b"rk-%d" % i, b"rv-%d" % i)
            self.crash(world, nodes[1], reports)
            yield world.sim.timeout(2 * _MS)  # detect + splice + replay
            for i in range(6, 10):
                yield from client.put(b"rk-%d" % i, b"rv-%d" % i)
            reads = []
            for i in range(10):
                found, value = yield from client.get(b"rk-%d" % i)
                reads.append((found, bytes(value)))
            yield from client.close()
            out["reads"] = reads

        run_driver(world, driver())
        assert out["reads"] == [(True, b"rv-%d" % i) for i in range(10)]
        assert directory.chain_members(0) == ["replica0", "replica2"]
        recruit = nodes[2].chains[0]
        assert recruit.applied == 10 and recruit.committed == 10
        assert world.tracer.get("replica0.%s" % names.REPL_ENTRIES_REPLAYED) \
            >= 6  # the pre-crash log reached the recruit
        assert reports and reports[0].as_dict()

    def test_head_death_loses_no_acked_write(self):
        world, directory, nodes, (client,) = build_cluster()
        reports = []
        acked = {}
        out = {"unacked": 0}

        def driver():
            yield world.sim.timeout(50 * _US)
            for i in range(4):
                yield from client.put(b"hk-%d" % i, b"hv-%d" % i)
                acked[b"hk-%d" % i] = b"hv-%d" % i
            self.crash(world, nodes[0], reports)
            for i in range(4, 12):
                key, val = b"hk-%d" % i, b"hv-%d" % i
                try:
                    yield from client.put(key, val)
                    acked[key] = val
                except RetryBudgetExceeded:
                    out["unacked"] += 1
            yield world.sim.timeout(2 * _MS)
            for key, val in sorted(acked.items()):
                found, value = yield from client.get(key)
                assert found and bytes(value) == val, \
                    "acked write %r lost" % key
            yield from client.close()

        run_driver(world, driver())
        assert directory.head(0) == "replica1"
        assert len(acked) >= 4
        survivors = nodes[1:]
        states = {(n.chains[0].applied, n.chains[0].committed)
                  for n in survivors}
        assert len(states) == 1
        applied, committed = states.pop()
        assert applied == committed
