"""Property-based tests over the whole TCP stack: stream integrity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from ..conftest import make_net_pair

payload_lists = st.lists(st.binary(min_size=1, max_size=4000),
                         min_size=1, max_size=12)


def open_connection(w, a, b):
    listener = b.stack.tcp_listen(80)
    client = a.stack.tcp_connect("10.0.0.2", 80)
    w.run()
    server = listener.accept_nb()
    assert server is not None
    return client, server


class TestStreamIntegrity:
    @given(payload_lists)
    @settings(max_examples=25, deadline=None)
    def test_sends_concatenate_exactly(self, payloads):
        w, a, b = make_net_pair()
        client, server = open_connection(w, a, b)
        for payload in payloads:
            client.send(payload)
        w.run()
        received = server.recv()
        assert received == b"".join(payloads)

    @given(payload_lists, st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_lossy_link_never_corrupts_stream(self, payloads, seed):
        w, a, b = make_net_pair(drop_rate=0.15, seed=seed)
        client, server = open_connection(w, a, b)
        for payload in payloads:
            client.send(payload)
        w.run()
        collected = bytearray()
        for _ in range(50):
            chunk = server.recv()
            if chunk:
                collected.extend(chunk)
            if len(collected) >= sum(len(p) for p in payloads):
                break
            w.run(until=w.sim.now + 1_000_000)
        assert bytes(collected) == b"".join(payloads)

    @given(payload_lists, payload_lists)
    @settings(max_examples=15, deadline=None)
    def test_duplex_streams_are_independent(self, to_server, to_client):
        w, a, b = make_net_pair()
        client, server = open_connection(w, a, b)
        for payload in to_server:
            client.send(payload)
        for payload in to_client:
            server.send(payload)
        w.run()
        assert server.recv() == b"".join(to_server)
        assert client.recv() == b"".join(to_client)

    @given(st.lists(st.binary(min_size=1, max_size=1000), min_size=1,
                    max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_close_after_sends_delivers_everything_then_eof(self, payloads):
        w, a, b = make_net_pair()
        client, server = open_connection(w, a, b)
        for payload in payloads:
            client.send(payload)
        client.close()
        w.run()
        assert server.recv() == b"".join(payloads)
        assert server.peer_closed
