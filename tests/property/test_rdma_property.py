"""Property tests: RDMA NIC reliability under arbitrary loss seeds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from ..conftest import World


def rdma_pair(drop_rate, seed):
    w = World(drop_rate=drop_rate, seed=seed)
    a, b = w.add_host("a"), w.add_host("b")
    nic_a, nic_b = w.add_rdma(a), w.add_rdma(b)
    qp_a = nic_a.create_qp()
    qp_b = nic_b.create_qp()
    nic_a.connect_qp(qp_a, nic_b.addr, qp_b.qpn)
    nic_b.connect_qp(qp_b, nic_a.addr, qp_a.qpn)
    return w, (nic_a, qp_a), (nic_b, qp_b)


class TestReliabilityProperties:
    @given(st.integers(1, 10**6),
           st.floats(min_value=0.0, max_value=0.3),
           st.integers(1, 25))
    @settings(max_examples=25, deadline=None)
    def test_all_sends_delivered_in_order(self, seed, drop_rate, n_messages):
        """Any seed, any loss up to 30%: the bounded-retry RC contract.

        Delivery is an in-order, uncorrupted, gap-free prefix; every
        posted WR gets exactly one send CQE (an adversarial loss pattern
        may exhaust the retry budget, which errors the QP and flushes
        the rest - but nothing ever vanishes silently); every send acked
        ``ok`` was delivered; and if the QP never errored, everything
        was delivered and acked.
        """
        w, (nic_a, qp_a), (nic_b, qp_b) = rdma_pair(drop_rate, seed)
        for i in range(n_messages):
            nic_b.post_recv(qp_b, i, w.hosts["b"].mm.alloc(64))
        for i in range(n_messages):
            nic_a.post_send(qp_a, wr_id=i, payload=b"msg-%04d" % i)
        w.run()
        cqes = qp_b.recv_cq.poll(max_cqes=1000)
        delivered = [c["wr_id"] for c in cqes]
        # In-order gap-free prefix, each message uncorrupted.
        assert delivered == list(range(len(delivered)))
        for i, cqe in enumerate(cqes):
            assert cqe["buffer"].read(0, 8) == b"msg-%04d" % i
        # Exactly one send CQE per posted WR - no silent loss.
        send_cqes = qp_a.send_cq.poll(max_cqes=1000)
        assert sorted(c["wr_id"] for c in send_cqes) == list(range(n_messages))
        ok_ids = {c["wr_id"] for c in send_cqes if c["status"] == "ok"}
        assert ok_ids <= set(delivered)
        if not qp_a.error:
            assert delivered == list(range(n_messages))
            assert ok_ids == set(range(n_messages))

    @given(st.integers(1, 10**6), st.integers(1, 15))
    @settings(max_examples=15, deadline=None)
    def test_one_sided_writes_all_land(self, seed, n_writes):
        w, (nic_a, qp_a), (nic_b, qp_b) = rdma_pair(0.15, seed)
        targets = [w.hosts["b"].mm.alloc(32) for _ in range(n_writes)]
        for i, target in enumerate(targets):
            nic_a.post_write(qp_a, wr_id=i, payload=b"W%03d" % i,
                             raddr=target.addr)
        w.run()
        for i, target in enumerate(targets):
            assert target.read(0, 4) == b"W%03d" % i
        send_cqes = qp_a.send_cq.poll(max_cqes=1000)
        assert all(c["status"] == "ok" for c in send_cqes)
        assert len(send_cqes) == n_writes
