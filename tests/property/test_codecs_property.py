"""Property-based tests: wire codecs must round-trip for all inputs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netstack.arp import ARP_REPLY, ARP_REQUEST, ArpPacket
from repro.netstack.ethernet import EthernetFrame
from repro.netstack.framing import Deframer, frame_message
from repro.netstack.ipv4 import Ipv4Packet
from repro.netstack.packet import (
    bytes_to_ip,
    bytes_to_mac,
    internet_checksum,
    ip_to_bytes,
    mac_to_bytes,
)
from repro.netstack.tcp import TcpSegment
from repro.netstack.udp import UdpDatagram

macs = st.builds(
    lambda parts: ":".join("%02x" % p for p in parts),
    st.lists(st.integers(0, 255), min_size=6, max_size=6),
)
ips = st.builds(
    lambda parts: ".".join(str(p) for p in parts),
    st.lists(st.integers(0, 255), min_size=4, max_size=4),
)
payloads = st.binary(min_size=0, max_size=2048)


class TestAddressProperties:
    @given(macs)
    def test_mac_roundtrip(self, mac):
        assert bytes_to_mac(mac_to_bytes(mac)) == mac

    @given(ips)
    def test_ip_roundtrip(self, ip):
        assert bytes_to_ip(ip_to_bytes(ip)) == ip


class TestChecksumProperties:
    @given(st.binary(min_size=0, max_size=512))
    def test_checksum_fits_16_bits(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF

    @given(st.binary(min_size=2, max_size=512).filter(lambda d: len(d) % 2 == 0))
    def test_patched_checksum_verifies_to_zero(self, data):
        # Insert the checksum over a zeroed 2-byte field at offset 0.
        base = b"\x00\x00" + data
        csum = internet_checksum(base)
        patched = bytes([csum >> 8, csum & 0xFF]) + data
        assert internet_checksum(patched) == 0


class TestFrameCodecProperties:
    @given(macs, macs, st.integers(0, 0xFFFF), payloads)
    def test_ethernet_roundtrip(self, dst, src, ethertype, payload):
        frame = EthernetFrame(dst, src, ethertype, payload)
        assert EthernetFrame.unpack(frame.pack()) == frame

    @given(ips, ips, st.integers(0, 255), payloads,
           st.integers(1, 255), st.integers(0, 0xFFFF))
    def test_ipv4_roundtrip(self, src, dst, proto, payload, ttl, ident):
        pkt = Ipv4Packet(src, dst, proto, payload, ttl=ttl, ident=ident)
        parsed = Ipv4Packet.unpack(pkt.pack())
        assert (parsed.src, parsed.dst, parsed.proto, parsed.payload,
                parsed.ttl, parsed.ident) == (src, dst, proto, payload,
                                              ttl, ident)

    @given(ips, ips, st.integers(0, 65535), st.integers(0, 65535), payloads)
    def test_udp_roundtrip(self, src_ip, dst_ip, sport, dport, payload):
        datagram = UdpDatagram(sport, dport, payload)
        parsed = UdpDatagram.unpack(datagram.pack(src_ip, dst_ip))
        assert (parsed.src_port, parsed.dst_port, parsed.payload) == (
            sport, dport, payload)

    @given(st.integers(0, 65535), st.integers(0, 65535),
           st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1),
           st.integers(0, 31), st.integers(0, 65535), payloads,
           st.one_of(st.none(), st.integers(1, 65535)))
    def test_tcp_segment_roundtrip(self, sport, dport, seq, ack, flags,
                                   window, payload, mss):
        seg = TcpSegment(sport, dport, seq, ack, flags, window,
                         payload, mss=mss)
        parsed = TcpSegment.unpack(seg.pack("10.0.0.1", "10.0.0.2"))
        assert (parsed.src_port, parsed.dst_port, parsed.seq, parsed.ack,
                parsed.flags, parsed.window, parsed.payload, parsed.mss) == (
            sport, dport, seq, ack, flags, window, payload, mss)

    @given(ips, ips, macs, macs, st.sampled_from([ARP_REQUEST, ARP_REPLY]))
    def test_arp_roundtrip(self, sip, tip, smac, tmac, oper):
        pkt = ArpPacket(oper, smac, sip, tmac, tip)
        assert ArpPacket.unpack(pkt.pack()) == pkt


class TestFramingProperties:
    @given(st.lists(payloads, min_size=0, max_size=20))
    def test_concatenated_messages_all_recovered(self, messages):
        stream = b"".join(frame_message(m) for m in messages)
        d = Deframer()
        assert d.feed(stream) == messages

    @given(st.lists(payloads, min_size=1, max_size=10),
           st.data())
    @settings(max_examples=50)
    def test_arbitrary_chunking_preserves_messages(self, messages, data):
        stream = b"".join(frame_message(m) for m in messages)
        d = Deframer()
        out = []
        position = 0
        while position < len(stream):
            step = data.draw(st.integers(1, max(1, len(stream) - position)))
            out.extend(d.feed(stream[position:position + step]))
            position += step
        assert out == messages
        assert not d.pending()

    @given(st.lists(payloads, min_size=0, max_size=10))
    def test_message_count_statistics(self, messages):
        d = Deframer()
        stream = b"".join(frame_message(m) for m in messages)
        d.feed(stream) if stream else d.feed(b"")
        assert d.messages_out == len(messages)
        assert d.bytes_in == len(stream)
