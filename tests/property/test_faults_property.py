"""Property tests: random fault plans can never corrupt the byte stream.

Within each transport's retry budget (loss bursts at <= 30%, partitions
that heal, bounded jitter/duplication/corruption), a TCP-based libOS
must deliver exactly the bytes the application pushed - in order, once.
Any counter-example prints its ``(seed, plan)`` repro line, and
hypothesis shrinks the plan toward the minimal failing schedule.

Iteration count: ``FAULT_PROPERTY_EXAMPLES`` (default 50); CI's
non-blocking chaos job raises it.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.costs import DEFAULT_COSTS
from repro.sim.engine import Simulator
from repro.sim.fabric import Fabric
from repro.sim.faults import FaultEvent, FaultInjector, FaultPlan
from repro.sim.rand import Rng
from repro.testing import run_echo_scenario, run_storage_scenario

EXAMPLES = int(os.environ.get("FAULT_PROPERTY_EXAMPLES", "50"))

US = 1_000
MS = 1_000_000

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _window(draw, max_start, max_len, min_len=10 * US):
    start = draw(st.integers(0, max_start))
    return start, start + draw(st.integers(min_len, max_len))


@st.composite
def tcp_safe_plans(draw):
    """Plans inside TCP's recovery budget (6 SYN / 12 data retries)."""
    plan = FaultPlan(seed=draw(seeds))
    for _ in range(draw(st.integers(0, 2))):
        start, end = _window(draw, 1200 * US, 1 * MS)
        plan.loss(start, end,
                  rate=draw(st.floats(0.01, 0.3, allow_nan=False)))
    if draw(st.booleans()):
        start, end = _window(draw, 1200 * US, 500 * US)
        plan.reorder(start, end,
                     rate=draw(st.floats(0.05, 0.5, allow_nan=False)),
                     jitter_ns=draw(st.integers(1 * US, 30 * US)))
    if draw(st.booleans()):
        start, end = _window(draw, 1200 * US, 800 * US)
        plan.duplicate(start, end,
                       rate=draw(st.floats(0.05, 0.3, allow_nan=False)))
    if draw(st.booleans()):
        start, end = _window(draw, 1 * MS, 400 * US)
        plan.corrupt(start, end,
                     rate=draw(st.floats(0.05, 0.2, allow_nan=False)))
    if draw(st.booleans()):
        # Partitions always heal: duration well under the retry budget.
        start, end = _window(draw, 1 * MS, 800 * US, min_len=50 * US)
        plan.partition(None, None, start, end)
    return plan


@st.composite
def any_plans(draw):
    """Arbitrary valid plans (network + device events), for round-trips."""
    plan = FaultPlan(seed=draw(seeds))
    builders = (
        lambda s, e: plan.loss(s, e, rate=draw(st.floats(0, 1, allow_nan=False))),
        lambda s, e: plan.reorder(s, e, jitter_ns=draw(st.integers(1, MS))),
        lambda s, e: plan.duplicate(s, e),
        lambda s, e: plan.corrupt(s, e),
        lambda s, e: plan.partition(draw(st.sampled_from([None, "a", "b"])),
                                    draw(st.sampled_from([None, "c"])), s, e),
        lambda s, e: plan.latency(s, e, extra_ns=draw(st.integers(0, MS))),
        lambda s, e: plan.nic_stall("dpdk0", s, e,
                                    extra_ns=draw(st.integers(0, MS))),
        lambda s, e: plan.nic_ring_clamp("dpdk0", s, e,
                                         limit=draw(st.integers(0, 64))),
        lambda s, e: plan.nvme_slow("nvme0", s, e,
                                    factor=draw(st.floats(1, 100,
                                                          allow_nan=False))),
    )
    for index in draw(st.lists(st.integers(0, len(builders) - 1),
                               min_size=0, max_size=5)):
        start, end = _window(draw, 5 * MS, 5 * MS, min_len=1)
        builders[index](start, end)
    return plan


class TestDeliveryUnderChaos:
    @given(plan=tcp_safe_plans())
    @settings(max_examples=EXAMPLES, deadline=None, derandomize=True)
    def test_dpdk_tcp_delivers_exact_byte_stream(self, plan):
        result = run_echo_scenario("dpdk", plan, name="property-echo",
                                   n_messages=6, message_size=128)
        result.require_ok()  # message carries the (seed, plan) repro

    @given(seed=seeds, start=st.integers(0, 500 * US),
           duration=st.integers(50 * US, 1 * MS))
    @settings(max_examples=EXAMPLES, deadline=None, derandomize=True)
    def test_healing_partition_never_loses_data(self, seed, start, duration):
        plan = FaultPlan(seed=seed).partition(None, None, start,
                                              start + duration)
        result = run_echo_scenario("dpdk", plan, name="property-partition",
                                   n_messages=6, message_size=128)
        result.require_ok()

    @given(seed=seeds, start=st.integers(0, 2 * MS),
           duration=st.integers(100 * US, 5 * MS),
           factor=st.floats(1.0, 200.0, allow_nan=False))
    @settings(max_examples=max(10, EXAMPLES // 2), deadline=None,
              derandomize=True)
    def test_storage_reads_back_under_slow_flash(self, seed, start,
                                                 duration, factor):
        plan = FaultPlan(seed=seed).nvme_slow("nvme0", start,
                                              start + duration,
                                              factor=factor)
        result = run_storage_scenario(plan, name="property-storage",
                                      n_records=4, record_size=512)
        result.require_ok()


class TestPlanProperties:
    @given(plan=any_plans())
    @settings(max_examples=EXAMPLES, deadline=None, derandomize=True)
    def test_plan_json_roundtrip(self, plan):
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert FaultPlan.from_json(again.to_json()) == again

    @given(plan=any_plans(), frames=st.integers(1, 40))
    @settings(max_examples=EXAMPLES, deadline=None, derandomize=True)
    def test_frame_fate_is_a_pure_function_of_seed_and_plan(self, plan,
                                                            frames):
        text = plan.to_json()

        def decisions():
            injector = FaultInjector(FaultPlan.from_json(text))
            injector.attach_fabric(Fabric(Simulator(), DEFAULT_COSTS,
                                          rng=Rng(0)))
            return [injector.frame_fate("a", "b", b"x" * 64, 64)
                    for _ in range(frames)]

        assert decisions() == decisions()
