"""Property sweep over pipeline chains, placements, and element faults.

For random ``filter``/``map``/``sort`` chains, with the element
functions placed on the CPU or on an offload engine, with or without a
poisoned element that makes the function raise mid-stream:

* every pop completes (an element fault fails pops, it never hangs
  them);
* after teardown the qtoken lifecycle identity closes with zero tokens
  in flight;
* the element functions ran exactly as many times as the pipeline
  counters charged, and the device-placed executions reconcile with the
  offload engine's own ``offloaded_*`` ledger.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import LibOS
from repro.hw.offload import OffloadEngine

from ..conftest import World

POISON = b"\x00BOOM"


def build_stage(libos, qd, op, calls):
    def guard(sga):
        calls[op] += 1
        if sga.tobytes() == POISON:
            raise ValueError("poisoned element")

    if op == "filter":
        def predicate(sga):
            guard(sga)
            return True
        return libos.filter(qd, predicate)
    if op == "map":
        def fn(sga):
            guard(sga)
            return sga
        return libos.map(qd, fn)

    def key(sga):
        guard(sga)
        return sga.tobytes()
    return libos.sort(qd, key)


@given(chain=st.lists(st.sampled_from(["filter", "map", "sort"]),
                      min_size=1, max_size=3),
       with_offload=st.booleans(),
       n_elements=st.integers(min_value=1, max_value=8),
       poison=st.one_of(st.none(), st.integers(min_value=0, max_value=7)))
@settings(max_examples=60, deadline=None)
def test_chains_never_hang_and_counters_reconcile(chain, with_offload,
                                                  n_elements, poison):
    w = World()
    host = w.add_host("h", cores=4)
    libos = LibOS(host, "demi")
    if with_offload:
        libos.offload_engine = OffloadEngine(host)
    calls = {"filter": 0, "map": 0, "sort": 0}
    src = libos.queue()
    qd = src
    derived = []
    for op in chain:
        qd = build_stage(libos, qd, op, calls)
        derived.append(qd)

    def proc():
        for i in range(n_elements):
            data = POISON if i == poison else b"e%02d" % i
            yield from libos.blocking_push(src, libos.sga_alloc(data))
        errors = []
        payloads = []
        for _ in range(n_elements):
            result = yield from libos.blocking_pop(qd)
            if result.error is not None:
                errors.append(result.error)
                break
            payloads.append(result.sga.tobytes())
        for out in reversed(derived):
            yield from libos.close(out)
        yield from libos.close(src)
        return payloads, errors

    p = w.sim.spawn(proc())
    w.sim.run_until_complete(p, limit=10**12)
    assert p.value is not None, "pipeline hung"
    payloads, errors = p.value

    poisoned = poison is not None and poison < n_elements
    if poisoned:
        assert errors, "poisoned element must surface as a pop error"
        assert "element function failed" in errors[0]
        assert POISON not in payloads
    else:
        assert not errors
        assert sorted(payloads) == [b"e%02d" % i for i in range(n_elements)]

    # -- token ledger closes, nothing left in flight -----------------------
    qt = libos.qtokens
    assert qt.in_flight == 0
    assert qt.created == qt.completed + qt.cancelled + qt.in_flight

    # -- executions == charged elements, per operator ----------------------
    for op in ("filter", "map", "sort"):
        device = w.tracer.get("demi.pipeline.%s_device_elements" % op)
        cpu = w.tracer.get("demi.pipeline.%s_cpu_elements" % op)
        assert calls[op] == device + cpu
        if with_offload:
            assert device == w.tracer.get("offload0.offloaded_%s" % op)
        else:
            assert device == 0
