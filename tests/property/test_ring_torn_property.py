"""Property: a ring slot write truncated at ANY byte offset never decodes.

The replication log's safety depends on this exactly: the consumer polls
the slot while the NIC may still be landing bytes, so every prefix of
the write interleaved with whatever the slot held before (zeros on a
fresh ring, the lapped record after a wrap) must be rejected, and only
the complete record accepted.
"""

from repro.rmem.ring import (RECORD_MAGIC, RECORD_STAMP, SLOT_HEADER,
                             decode_record, encode_record)
from repro.sim.rand import Rng

SLOT_SIZE = 96
MAX_PAYLOAD = SLOT_SIZE - SLOT_HEADER.size - RECORD_STAMP.size
N_SLOTS = 8


def pad(record: bytes, fill: bytes) -> bytes:
    """A full slot image: the record over the old slot contents."""
    return record + fill[len(record):SLOT_SIZE]


def test_truncation_at_every_offset_is_rejected_over_zeros():
    rng = Rng(0xD0)
    for seq in (1, 2, N_SLOTS, N_SLOTS + 1, 1000):
        payload = rng.bytes(rng.randint(0, MAX_PAYLOAD))
        record = encode_record(seq, payload)
        stale = b"\x00" * SLOT_SIZE
        for cut in range(len(record)):
            torn = pad(record[:cut] + stale[cut:cut], stale)
            torn = record[:cut] + stale[cut:]
            assert decode_record(torn, seq, MAX_PAYLOAD) is None, \
                "truncation at byte %d of seq %d decoded" % (cut, seq)
        assert decode_record(pad(record, stale), seq, MAX_PAYLOAD) == payload


def test_truncation_over_a_lapped_record_is_rejected():
    """After a wrap the slot holds the complete record for seq - n_slots:
    every partial overwrite must decode as *neither* record."""
    rng = Rng(0xD1)
    for _ in range(20):
        old_seq = rng.randint(1, 500)
        new_seq = old_seq + N_SLOTS  # the lap that reuses the slot
        old = pad(encode_record(old_seq, rng.bytes(MAX_PAYLOAD)),
                  b"\x00" * SLOT_SIZE)
        new = encode_record(new_seq, rng.bytes(rng.randint(0, MAX_PAYLOAD)))
        for cut in range(len(new)):
            torn = new[:cut] + old[cut:]
            assert decode_record(torn, new_seq, MAX_PAYLOAD) is None, \
                "torn overwrite at byte %d decoded as new" % cut
        full = pad(new, old)
        assert decode_record(full, new_seq, MAX_PAYLOAD) is not None
        # The stale record never masquerades as the expected seq either.
        assert decode_record(old, new_seq, MAX_PAYLOAD) is None


def test_stamp_must_match_seq_not_just_exist():
    payload = b"payload-bytes"
    record = encode_record(7, payload)
    # Corrupt only the stamp: right place, wrong value.
    bad_stamp = RECORD_STAMP.pack(8 ^ RECORD_MAGIC)
    forged = record[:-RECORD_STAMP.size] + bad_stamp
    assert decode_record(forged, 7, MAX_PAYLOAD) is None
    assert decode_record(record, 7, MAX_PAYLOAD) == payload


def test_length_field_cannot_point_past_the_slot():
    record = encode_record(3, b"x" * 10)
    # Claim a length larger than the geometry allows.
    forged = SLOT_HEADER.pack(3, MAX_PAYLOAD + 1) + record[SLOT_HEADER.size:]
    assert decode_record(forged.ljust(SLOT_SIZE, b"\x00"), 3,
                         MAX_PAYLOAD) is None
