"""Property test: the crash-reclaim invariant holds at *every* instant.

The golden crash scenarios pin one kill time per libOS kind; here
hypothesis sweeps ``proc_crash(at)`` uniformly over the whole workload
horizon - before the connection exists, mid-handshake, mid-stream, and
after the last echo - and demands the same end state every time: no
live buffers, no IOMMU mappings, empty qd/fd tables, a consistent
qtoken ledger.  Timing/outcome assertions are relaxed (``strict=False``)
because a pre-connect or post-stream kill legitimately changes what the
surviving peer observes; the reclamation invariant itself never relaxes.

Iteration count: ``CRASH_PROPERTY_EXAMPLES`` (default 30; each example
is a full two-host simulation).
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.faults import FaultPlan
from repro.testing import run_crash_echo_scenario

EXAMPLES = int(os.environ.get("CRASH_PROPERTY_EXAMPLES", "30"))

US = 1_000
MS = 1_000_000

#: sweep window: past the end of the slowest kind's 80-message stream
HORIZON_NS = 4 * MS


class TestCrashAnywhere:
    @given(kind=st.sampled_from(("dpdk", "posix", "rdma")),
           seed=st.integers(0, 2**32 - 1),
           at=st.integers(0, HORIZON_NS))
    @settings(max_examples=EXAMPLES, deadline=None, derandomize=True)
    def test_reclaim_invariant_holds_at_any_crash_time(self, kind, seed, at):
        plan = FaultPlan(seed=seed).proc_crash("client", at)
        result = run_crash_echo_scenario(
            kind, plan, n_messages=80, idle_timeout_ns=2 * MS, strict=False)
        assert result.ok, result.repro_line() + "\n" + "\n".join(
            result.failures)

    @given(at=st.integers(0, 2 * MS))
    @settings(max_examples=max(5, EXAMPLES // 3), deadline=None,
              derandomize=True)
    def test_replays_identically_from_seed_and_plan(self, at):
        plan = FaultPlan(seed=at + 1).proc_crash("client", at)
        first = run_crash_echo_scenario("dpdk", plan, n_messages=80,
                                        strict=False)
        second = run_crash_echo_scenario("dpdk", plan, n_messages=80,
                                         strict=False)
        assert first.signature == second.signature
        assert first.counters == second.counters
