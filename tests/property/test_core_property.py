"""Property-based tests on Demikernel core and substrate invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import LibOS
from repro.core.types import Sga, SgaSegment
from repro.sim.rand import Rng
from repro.sim.trace import LatencyStats
from repro.testbed import World


def fresh_libos():
    w = World()
    host = w.add_host("h")
    return w, LibOS(host, "demi")


class TestQueueProperties:
    @given(st.lists(st.binary(min_size=1, max_size=256), min_size=1,
                    max_size=30))
    @settings(max_examples=40)
    def test_fifo_order_preserved(self, elements):
        """Whatever is pushed pops out whole, in order."""
        w, libos = fresh_libos()
        qd = libos.queue()

        def proc():
            for element in elements:
                yield from libos.blocking_push(qd, libos.sga_alloc(element))
            out = []
            for _ in elements:
                result = yield from libos.blocking_pop(qd)
                out.append(result.sga.tobytes())
            return out

        p = w.sim.spawn(proc())
        w.run()
        assert p.value == elements

    @given(st.lists(st.binary(min_size=1, max_size=64), min_size=1,
                    max_size=20),
           st.integers(0, 3))
    @settings(max_examples=30)
    def test_interleaved_push_pop_conservation(self, elements, extra_pops):
        """Elements are conserved: pops return exactly what was pushed."""
        w, libos = fresh_libos()
        qd = libos.queue()

        def proc():
            popped = []
            pop_tokens = [libos.pop(qd) for _ in range(extra_pops)]
            for element in elements:
                yield from libos.blocking_push(qd, libos.sga_alloc(element))
            needed = len(elements) - extra_pops
            for _ in range(max(0, needed)):
                result = yield from libos.blocking_pop(qd)
                popped.append(result.sga.tobytes())
            for token in pop_tokens[:len(elements)]:
                result = yield from libos.wait(token)
                popped.append(result.sga.tobytes())
            return popped

        p = w.sim.spawn(proc())
        w.run()
        assert sorted(p.value) == sorted(elements)

    @given(st.lists(st.binary(min_size=1, max_size=64), min_size=1,
                    max_size=15))
    @settings(max_examples=30)
    def test_sort_queue_emits_in_key_order(self, elements):
        w, libos = fresh_libos()
        src = libos.queue()
        sorted_qd = libos.sort(src, key=lambda sga: sga.tobytes())

        def proc():
            for element in elements:
                yield from libos.blocking_push(src, libos.sga_alloc(element))
            yield w.sim.timeout(1_000_000)  # let the pump drain
            out = []
            for _ in elements:
                result = yield from libos.blocking_pop(sorted_qd)
                out.append(result.sga.tobytes())
            return out

        p = w.sim.spawn(proc())
        w.run()
        assert p.value == sorted(elements)


class TestSgaProperties:
    @given(st.lists(st.binary(min_size=1, max_size=64), min_size=1,
                    max_size=8))
    def test_multi_segment_gather_equals_concatenation(self, chunks):
        w, libos = fresh_libos()
        segments = []
        for chunk in chunks:
            buf = libos.mm.alloc(len(chunk))
            buf.write(0, chunk)
            segments.append(SgaSegment(buf, 0, len(chunk)))
        sga = Sga(segments)
        assert sga.tobytes() == b"".join(chunks)
        assert sga.nbytes == sum(len(c) for c in chunks)
        assert sga.nsegments == len(chunks)


class TestMemoryProperties:
    @given(st.lists(st.integers(1, 8192), min_size=1, max_size=60))
    @settings(max_examples=40)
    def test_allocations_never_overlap(self, sizes):
        w = World()
        host = w.add_host("h")
        buffers = [host.mm.alloc(size) for size in sizes]
        ranges = sorted((b.addr, b.addr + b.capacity) for b in buffers)
        for (start1, end1), (start2, _end2) in zip(ranges, ranges[1:]):
            assert end1 <= start2

    @given(st.lists(st.integers(1, 4096), min_size=1, max_size=40),
           st.data())
    @settings(max_examples=40)
    def test_alloc_free_accounting_balances(self, sizes, data):
        w = World()
        host = w.add_host("h")
        live = []
        for size in sizes:
            live.append(host.mm.alloc(size))
            if live and data.draw(st.booleans()):
                victim = live.pop(data.draw(
                    st.integers(0, len(live) - 1)))
                host.mm.free(victim)
        assert host.mm.live_buffer_count == len(live)
        assert host.mm.live_bytes == sum(b.capacity for b in live)
        for buf in live:
            host.mm.free(buf)
        assert host.mm.live_buffer_count == 0
        assert host.mm.live_bytes == 0

    @given(st.lists(st.integers(1, 2048), min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_resolve_finds_every_live_buffer(self, sizes):
        w = World()
        host = w.add_host("h")
        buffers = [host.mm.alloc(size) for size in sizes]
        for buf in buffers:
            found, offset = host.mm.resolve(buf.addr, buf.capacity)
            assert found is buf and offset == 0
            if buf.capacity > 1:
                found, offset = host.mm.resolve(buf.addr + 1, buf.capacity - 1)
                assert found is buf and offset == 1


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=200))
    def test_percentiles_are_ordered_and_within_range(self, samples):
        stats = LatencyStats()
        stats.extend(samples)
        assert stats.minimum <= stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum
        eps = 1e-9 * max(1.0, stats.maximum)  # float summation slack
        assert stats.minimum - eps <= stats.mean <= stats.maximum + eps

    @given(st.lists(st.floats(min_value=0, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=100))
    def test_percentile_100_is_max(self, samples):
        stats = LatencyStats()
        stats.extend(samples)
        assert stats.percentile(100) == stats.maximum
        assert stats.percentile(0) == stats.minimum


class TestRngProperties:
    @given(st.integers(0, 2**32), st.integers(1, 500))
    def test_zipf_index_in_range(self, seed, n):
        rng = Rng(seed)
        for _ in range(20):
            assert 0 <= rng.zipf_index(n) < n

    @given(st.integers(0, 2**32))
    def test_same_seed_same_stream(self, seed):
        a, b = Rng(seed), Rng(seed)
        assert [a.randint(0, 1000) for _ in range(10)] == \
               [b.randint(0, 1000) for _ in range(10)]

    @given(st.integers(0, 2**20), st.integers(0, 64))
    def test_bytes_length(self, seed, n):
        assert len(Rng(seed).bytes(n)) == n
