"""Property battery for the batched datapath fast path (ISSUE 6).

Three invariants the batching layers must never bend:

* **FIFO per flow** - burst RX delivery and coalesced TX doorbells must
  not reorder a TCP flow's elements, loss or no loss;
* **exactly-once completion** - ``pop_batch``/``push_batch`` tokens
  complete exactly once each; a second wait on a drained token raises,
  and the qtoken lifecycle identity closes;
* **batch/singleton equivalence** - with batching on or off, the same
  workload under the same fault plan yields byte-identical streams
  (batching only moves *costs*, never bytes or ordering).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import DemiError
from repro.sim.faults import FaultPlan
from repro.testbed import World, make_dpdk_libos_pair

US = 1_000

messages_lists = st.lists(st.binary(min_size=1, max_size=512),
                          min_size=1, max_size=24)


def _run_stream(messages, batching, drop_rate=0.0, seed=5, plan=None,
                spin_budget_ns=None):
    """Pipeline *messages* client->server over TCP; return the pops.

    The client posts every push before waiting (pipelined), so bursts
    actually form: several frames per doorbell on the TX side, several
    frames per poll-loop wake on the RX side.
    """
    w, client, server = make_dpdk_libos_pair(
        drop_rate=drop_rate, seed=seed, batching=batching,
        spin_budget_ns=spin_budget_ns)
    if plan is not None:
        w.install_faults(plan)

    def server_proc():
        lqd = yield from server.socket()
        yield from server.bind(lqd, 7)
        yield from server.listen(lqd)
        qd = yield from server.accept(lqd)
        out = []
        for _ in messages:
            result = yield from server.blocking_pop(qd)
            out.append(result.sga.tobytes())
        return out

    def client_proc():
        qd = yield from client.socket()
        yield from client.connect(qd, "10.0.0.2", 7)
        tokens = [client.push(qd, client.sga_alloc(m)) for m in messages]
        yield from client.wait_all(tokens)

    sp = w.sim.spawn(server_proc())
    w.sim.spawn(client_proc())
    w.sim.run_until_complete(sp, limit=10**14)
    return sp.value, w


@st.composite
def recoverable_plans(draw):
    """Fault plans inside TCP's retry budget: loss + reorder windows."""
    plan = FaultPlan(seed=draw(st.integers(0, 2**32 - 1)))
    if draw(st.booleans()):
        start = draw(st.integers(0, 800 * US))
        plan.loss(start, start + draw(st.integers(50 * US, 600 * US)),
                  rate=draw(st.floats(0.05, 0.3, allow_nan=False)))
    if draw(st.booleans()):
        start = draw(st.integers(0, 800 * US))
        plan.reorder(start, start + draw(st.integers(50 * US, 600 * US)),
                     rate=draw(st.floats(0.1, 0.5, allow_nan=False)),
                     jitter_ns=draw(st.integers(10 * US, 150 * US)))
    return plan


class TestBurstFifoOrder:
    @given(messages_lists)
    @settings(max_examples=15, deadline=None)
    def test_burst_delivery_preserves_fifo(self, messages):
        """Pipelined pushes arrive whole and in order with batching on."""
        got, w = _run_stream(messages, batching=True)
        assert got == messages
        # The fast path actually engaged: bursts were counted and every
        # burst frame is accounted for by the per-frame counter.
        rx_frames = w.tracer.get("server.catnip.stack.rx_frames")
        burst_frames = w.tracer.get("server.catnip.stack.rx_burst_frames")
        assert burst_frames == rx_frames

    @given(messages_lists, st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_fifo_survives_loss_with_batching(self, messages, seed):
        """Retransmissions under loss cannot reorder the batched flow."""
        got, _w = _run_stream(messages, batching=True, drop_rate=0.08,
                              seed=seed)
        assert got == messages


class TestExactlyOnceCompletion:
    @given(st.lists(st.binary(min_size=1, max_size=64), min_size=1,
                    max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_pop_batch_completes_each_token_once(self, elements):
        """Each pop_batch token yields exactly one element; re-wait raises."""
        from repro.core.api import LibOS

        w = World()
        host = w.add_host("h")
        libos = LibOS(host, "demi")
        qds = [libos.queue() for _ in elements]

        def proc():
            tokens = libos.pop_batch(qds)
            assert len(set(tokens)) == len(elements)
            for qd, element in zip(qds, elements):
                yield from libos.blocking_push(qd, libos.sga_alloc(element))
            got = {}
            outstanding = list(tokens)
            index_of = {t: i for i, t in enumerate(tokens)}
            while outstanding:
                ready = yield from libos.wait_any_n(outstanding)
                for index, result in sorted(ready, reverse=True):
                    token = outstanding.pop(index)
                    # exactly-once: this token was never seen before
                    assert index_of[token] not in got
                    got[index_of[token]] = result.sga.tobytes()
            return got

        p = w.sim.spawn(proc())
        w.run()
        assert p.value == {i: e for i, e in enumerate(elements)}
        # A drained token is gone: waiting again must raise.
        def rewait():
            token = libos.pop_batch([qds[0]])[0]
            libos.qtokens.cancel(token)
            try:
                yield from libos.wait(token)
            except DemiError:
                return "raised"
            return "no error"

        p2 = w.sim.spawn(rewait())
        w.run()
        assert p2.value == "raised"
        t = libos.qtokens
        assert t.created == t.completed + t.cancelled + t.in_flight

    @given(st.lists(st.binary(min_size=1, max_size=64), min_size=1,
                    max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_push_batch_mints_one_token_per_element(self, elements):
        from repro.core.api import LibOS

        w = World()
        host = w.add_host("h")
        libos = LibOS(host, "demi")
        qd = libos.queue()

        def proc():
            tokens = libos.push_batch(
                [(qd, libos.sga_alloc(e)) for e in elements])
            assert len(set(tokens)) == len(elements)
            results = yield from libos.wait_all(tokens)
            out = []
            for _ in elements:
                result = yield from libos.blocking_pop(qd)
                out.append(result.sga.tobytes())
            return results, out

        p = w.sim.spawn(proc())
        w.run()
        results, out = p.value
        assert out == elements
        assert len(results) == len(elements)
        t = libos.qtokens
        assert t.created == t.completed + t.cancelled + t.in_flight


class TestBatchSingletonEquivalence:
    @given(messages_lists, recoverable_plans())
    @settings(max_examples=10, deadline=None)
    def test_byte_identical_streams_under_faults(self, messages, plan):
        """Batching only moves costs: same plan, same bytes, same order."""
        singleton, _ = _run_stream(
            messages, batching=False, seed=3,
            plan=FaultPlan(plan.seed, list(plan.events)))
        batched, _ = _run_stream(
            messages, batching=True, seed=3,
            plan=FaultPlan(plan.seed, list(plan.events)))
        assert singleton == batched == messages

    @given(messages_lists, st.floats(0.0, 0.1, allow_nan=False),
           st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_byte_identical_streams_under_loss(self, messages, drop_rate,
                                               seed):
        singleton, _ = _run_stream(messages, batching=False,
                                   drop_rate=drop_rate, seed=seed)
        batched, _ = _run_stream(messages, batching=True,
                                 drop_rate=drop_rate, seed=seed)
        assert singleton == batched == messages
