"""Property tests: software partitioning agrees with hardware RSS.

The sharded serving path stands on one fact: :func:`repro.apps.steering.
key_partition`, :func:`repro.hw.nic.rss_queue_for_flow`, and the NIC's
in-datapath :meth:`~repro.hw.nic.DpdkNic._rss_queue` all apply the same
hash.  If any pair ever disagreed, a flow could land on one shard while
its keys belong to another - silent cross-shard traffic.  Hypothesis
hunts for a disagreeing (ips, ports, queue count) tuple, and a seeded
end-to-end run pins the qtoken lifecycle identity per shard after a
lossy (chaos) run.
"""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.steering import key_partition
from repro.hw.nic import rss_hash, rss_queue_for_flow
from repro.netstack.packet import ip_to_bytes
from repro.testbed import World

octets = st.integers(min_value=0, max_value=255)
ips = st.builds("%d.%d.%d.%d".__mod__,
                st.tuples(octets, octets, octets, octets))
ports = st.integers(min_value=1, max_value=65535)
queue_counts = st.integers(min_value=1, max_value=16)


def make_ipv4_frame(src_ip, dst_ip, src_port, dst_port):
    """The smallest frame whose RSS-relevant bytes are all real.

    Ethernet header (14B, ethertype 0x0800) + IPv4 header up to the
    addresses (12B) + src/dst IP (8B) + src/dst port (4B) = 38 bytes,
    exactly the prefix ``DpdkNic._rss_queue`` hashes over.
    """
    return (b"\x00" * 12 + b"\x08\x00" + b"\x00" * 12
            + ip_to_bytes(src_ip) + ip_to_bytes(dst_ip)
            + struct.pack("!HH", src_port, dst_port))


def make_nic(n_queues):
    w = World()
    host = w.add_host("h")
    return w.add_dpdk(host, mac="02:00:00:00:99:01", n_rx_queues=n_queues)


class TestRssMatchesFlowHelper:
    @given(src_ip=ips, dst_ip=ips, src_port=ports, dst_port=ports,
           n_queues=queue_counts)
    @settings(max_examples=100, deadline=None)
    def test_nic_datapath_agrees_with_helper(self, src_ip, dst_ip,
                                             src_port, dst_port, n_queues):
        nic = make_nic(n_queues)
        frame = make_ipv4_frame(src_ip, dst_ip, src_port, dst_port)
        assert nic._rss_queue(frame) == rss_queue_for_flow(
            src_ip, dst_ip, src_port, dst_port, n_queues)

    @given(src_ip=ips, dst_ip=ips, src_port=ports, dst_port=ports,
           n_queues=queue_counts, padding=st.integers(0, 64))
    @settings(max_examples=50, deadline=None)
    def test_payload_never_changes_the_queue(self, src_ip, dst_ip,
                                             src_port, dst_port, n_queues,
                                             padding):
        nic = make_nic(n_queues)
        frame = make_ipv4_frame(src_ip, dst_ip, src_port, dst_port)
        assert nic._rss_queue(frame + b"\xff" * padding) == \
            nic._rss_queue(frame)

    @given(frame=st.binary(max_size=37), n_queues=queue_counts)
    @settings(max_examples=50, deadline=None)
    def test_short_or_non_ip_frames_hit_queue_zero(self, frame, n_queues):
        # ARP and runt frames must be deterministic, not hash garbage.
        nic = make_nic(n_queues)
        assert nic._rss_queue(frame) == 0


class TestKeyPartition:
    @given(key=st.binary(min_size=1, max_size=64), n=queue_counts)
    @settings(max_examples=200, deadline=None)
    def test_in_range_and_same_hash_as_rss(self, key, n):
        p = key_partition(key, n)
        assert 0 <= p < n
        assert p == (rss_hash(key) % n if n > 1 else 0)

    @given(key=st.binary(min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_single_partition_owns_everything(self, key):
        assert key_partition(key, 1) == 0


class TestQtokenIdentityAfterShardedChaos:
    @given(seed=st.integers(min_value=0, max_value=2**16),
           drop_rate=st.floats(min_value=0.0, max_value=0.05,
                               allow_nan=False))
    @settings(max_examples=8, deadline=None)
    def test_identity_holds_per_shard(self, seed, drop_rate):
        from tests.cluster.test_sharded import run_sharded

        _, server, _ = run_sharded(n_shards=2, n_ops=12,
                                   drop_rate=drop_rate, seed=seed)
        assert server.requests_served == 2 * 12
        assert server.wasted_wakeups == 0
        assert server.cross_wakeups == 0
        for shard in server.shards:
            t = shard.libos.qtokens
            assert t.created == t.completed + t.cancelled + t.in_flight
