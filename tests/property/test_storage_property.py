"""Property-based tests on the log store and the NVMe device."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.nvme import NvmeDevice
from repro.storage.log import LogStore

from ..conftest import World

records_strategy = st.lists(st.binary(min_size=1, max_size=6000),
                            min_size=1, max_size=20)


def make_store():
    w = World()
    host = w.add_host("h")
    nvme = NvmeDevice(host, name="h.nvme0")
    return w, LogStore(nvme, host.cpu), nvme


def run(w, gen):
    p = w.sim.spawn(gen)
    w.run()
    return p.value


class TestLogStoreProperties:
    @given(records_strategy)
    @settings(max_examples=30, deadline=None)
    def test_append_read_roundtrip_any_payloads(self, records):
        w, store, _ = make_store()

        def proc():
            ids = []
            for record in records:
                ids.append((yield from store.append(record)))
            yield from store.sync()
            out = []
            for rid in ids:
                out.append((yield from store.read(rid)))
            return out

        assert run(w, proc()) == records

    @given(records_strategy, st.data())
    @settings(max_examples=25, deadline=None)
    def test_interleaved_syncs_preserve_all_records(self, records, data):
        """Records survive any pattern of intermediate syncs."""
        w, store, _ = make_store()
        sync_after = {i for i in range(len(records))
                      if data.draw(st.booleans())}

        def proc():
            ids = []
            for i, record in enumerate(records):
                ids.append((yield from store.append(record)))
                if i in sync_after:
                    yield from store.sync()
            yield from store.sync()
            out = []
            for rid in ids:
                out.append((yield from store.read(rid)))
            return out

        assert run(w, proc()) == records

    @given(records_strategy)
    @settings(max_examples=20, deadline=None)
    def test_recovery_finds_exactly_synced_records(self, records):
        w, store, nvme = make_store()

        def write_phase():
            for record in records:
                yield from store.append(record)
            yield from store.sync()

        run(w, write_phase())
        recovered = LogStore(nvme, store.core)

        def recover_phase():
            ids = yield from recovered.mount()
            out = []
            for rid in ids:
                out.append((yield from recovered.read(rid)))
            return out

        assert run(w, recover_phase()) == records

    @given(records_strategy)
    @settings(max_examples=20, deadline=None)
    def test_record_ids_strictly_increase(self, records):
        w, store, _ = make_store()

        def proc():
            ids = []
            for record in records:
                ids.append((yield from store.append(record)))
            return ids

        ids = run(w, proc())
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)


class TestNvmeProperties:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_blocks_hold_last_write(self, data):
        w = World()
        host = w.add_host("h")
        dev = NvmeDevice(host, name="h.nvme0", capacity_blocks=64)
        expected = {}

        def proc():
            n_writes = data.draw(st.integers(1, 15))
            for _ in range(n_writes):
                lba = data.draw(st.integers(0, 63))
                fill = data.draw(st.integers(0, 255))
                payload = bytes([fill]) * dev.block_size
                expected[lba] = payload
                yield dev.submit_write(lba, payload)
            for lba, payload in expected.items():
                got = yield dev.submit_read(lba, 1)
                assert got == payload

        p = w.sim.spawn(proc())
        w.run()
        assert p.triggered
