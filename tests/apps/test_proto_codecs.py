"""Codec layer tests: golden bytes, split streams, legacy equivalence.

The golden vectors pin the wire formats byte-for-byte (a codec change
that alters them is a protocol break, not a refactor).  The split-offset
and random-chunking tests prove the incremental contract: however a
stream is sliced, the decoded request/response sequence is identical to
the one-shot decode.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import cache, kvstore
from repro.apps.proto import (CODECS, LegacyCacheCodec, LegacyKvCodec,
                              MemcachedCodec, RespCodec)
from repro.apps.proto.codec import (ST_COUNT, ST_ERROR, ST_MISS, ST_PONG,
                                    ST_STORED, ST_VALUE, CodecError, Request,
                                    Response)

# Shared test scripts: every codec must round-trip the ops it supports.
KV_REQUESTS = [
    Request(op="set", key=b"alpha", value=b"0123456789"),
    Request(op="get", key=b"alpha"),
    Request(op="get", key=b"missing"),
    Request(op="delete", key=b"alpha"),
]
KV_RESPONSES = [
    Response(status=ST_STORED, op="set"),
    Response(status=ST_VALUE, value=b"0123456789", op="get"),
    Response(status=ST_MISS, op="get"),
    Response(status=ST_COUNT, count=1, op="delete"),
]


def one_shot_requests(codec_cls, wire):
    return codec_cls().feed(wire)


class TestRespGoldenBytes:
    def test_encode_request_get(self):
        wire = RespCodec().encode_request(Request(op="get", key=b"k1"))
        assert wire == b"*2\r\n$3\r\nGET\r\n$2\r\nk1\r\n"

    def test_encode_request_set(self):
        wire = RespCodec().encode_request(
            Request(op="set", key=b"k", value=b"vv"))
        assert wire == b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$2\r\nvv\r\n"

    def test_encode_request_set_with_ttl(self):
        wire = RespCodec().encode_request(
            Request(op="set", key=b"k", value=b"v", ttl_ms=1500))
        assert wire == (b"*5\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n"
                        b"$2\r\nPX\r\n$4\r\n1500\r\n")

    def test_encode_request_delete_multi(self):
        wire = RespCodec().encode_request(
            Request(op="delete", key=b"a",
                    pairs=((b"a", b""), (b"b", b""))))
        assert wire == b"*3\r\n$3\r\nDEL\r\n$1\r\na\r\n$1\r\nb\r\n"

    def test_encode_request_ping(self):
        assert RespCodec().encode_request(Request(op="ping")) \
            == b"*1\r\n$4\r\nPING\r\n"

    def test_encode_responses(self):
        codec = RespCodec()
        assert codec.encode(Response(status=ST_STORED)) == b"+OK\r\n"
        assert codec.encode(Response(status=ST_PONG)) == b"+PONG\r\n"
        assert codec.encode(Response(status=ST_VALUE, value=b"hello")) \
            == b"$5\r\nhello\r\n"
        assert codec.encode(Response(status=ST_MISS)) == b"$-1\r\n"
        assert codec.encode(Response(status=ST_COUNT, count=2)) == b":2\r\n"
        assert codec.encode(Response(status=ST_ERROR, message="boom")) \
            == b"-ERR boom\r\n"

    def test_decode_request_case_insensitive(self):
        reqs = RespCodec().feed(b"*2\r\n$3\r\ngEt\r\n$1\r\nk\r\n")
        assert len(reqs) == 1 and reqs[0].op == "get"

    def test_unknown_command_is_invalid_not_desync(self):
        reqs = RespCodec().feed(b"*1\r\n$5\r\nBLPOP\r\n")
        assert reqs[0].op == "invalid"
        assert "unknown command" in reqs[0].error

    def test_arity_error_is_invalid(self):
        reqs = RespCodec().feed(b"*1\r\n$3\r\nGET\r\n")
        assert reqs[0].op == "invalid"

    def test_non_array_opener_raises(self):
        with pytest.raises(CodecError):
            RespCodec().feed(b"PING\r\n")

    def test_overlong_line_raises(self):
        with pytest.raises(CodecError):
            RespCodec().feed(b"*" + b"9" * 100)

    def test_pipelined_batch_decodes_in_order(self):
        wire = (b"*1\r\n$4\r\nPING\r\n"
                b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"
                b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n")
        assert [r.op for r in RespCodec().feed(wire)] \
            == ["ping", "get", "set"]


class TestMemcachedGoldenBytes:
    HEADER = struct.Struct("!BBHBBHIIQ")

    def test_get_request_header(self):
        wire = MemcachedCodec().encode_request(
            Request(op="get", key=b"k1", opaque=9))
        magic, opcode, klen, xlen, _dt, status, blen, opaque, cas = \
            self.HEADER.unpack(wire[:24])
        assert (magic, opcode, klen, xlen, status, blen, opaque, cas) \
            == (0x80, 0x00, 2, 0, 0, 2, 9, 0)
        assert wire[24:] == b"k1"

    def test_set_request_carries_flags_and_expiry(self):
        wire = MemcachedCodec().encode_request(
            Request(op="set", key=b"k", value=b"vv", ttl_ms=2000))
        magic, opcode, klen, xlen, _dt, _st, blen, _op, _cas = \
            self.HEADER.unpack(wire[:24])
        assert (magic, opcode, klen, xlen, blen) == (0x80, 0x01, 1, 8, 11)
        flags, expiry_s = struct.unpack("!II", wire[24:32])
        assert (flags, expiry_s) == (0, 2)
        assert wire[32:] == b"kvv"

    def test_ttl_rounds_up_to_seconds(self):
        wire = MemcachedCodec().encode_request(
            Request(op="set", key=b"k", value=b"v", ttl_ms=1))
        (_f, expiry_s) = struct.unpack("!II", wire[24:32])
        assert expiry_s == 1  # never silently immortal

    def test_get_hit_response(self):
        wire = MemcachedCodec().encode(
            Response(status=ST_VALUE, value=b"vv", op="get", opaque=3,
                     cas=17))
        magic, opcode, klen, xlen, _dt, status, blen, opaque, cas = \
            self.HEADER.unpack(wire[:24])
        assert (magic, opcode, status, opaque, cas) == (0x81, 0x00, 0, 3, 17)
        assert (klen, xlen, blen) == (0, 4, 6)
        assert wire[28:] == b"vv"

    def test_miss_response_is_not_found(self):
        wire = MemcachedCodec().encode(Response(status=ST_MISS, op="get"))
        (_m, _o, _k, _x, _d, status, _b, _op, _c) = \
            self.HEADER.unpack(wire[:24])
        assert status == 0x0001
        assert wire[24:] == b"Not found"

    def test_unknown_opcode_decodes_as_invalid_with_opaque(self):
        wire = self.HEADER.pack(0x80, 0x1C, 0, 0, 0, 0, 0, 77, 0)
        reqs = MemcachedCodec().feed(wire)
        assert reqs[0].op == "invalid"
        assert reqs[0].opaque == 77

    def test_bad_magic_raises(self):
        wire = self.HEADER.pack(0x42, 0x00, 0, 0, 0, 0, 0, 0, 0)
        with pytest.raises(CodecError):
            MemcachedCodec().feed(wire)

    def test_header_exceeding_body_raises(self):
        wire = self.HEADER.pack(0x80, 0x00, 8, 0, 0, 0, 2, 0, 0) + b"xx"
        with pytest.raises(CodecError):
            MemcachedCodec().feed(wire)

    def test_opaque_round_trips_through_both_directions(self):
        codec = MemcachedCodec()
        wire = codec.encode_request(Request(op="get", key=b"k", opaque=41))
        req = MemcachedCodec().feed(wire)[0]
        assert req.opaque == 41
        reply = codec.encode(Response(status=ST_MISS, op="get",
                                      opaque=req.opaque))
        assert MemcachedCodec().feed_responses(reply)[0].opaque == 41


class TestLegacyEquivalence:
    """The deprecated module helpers and the codecs speak identical bytes."""

    def test_kv_requests_byte_identical(self):
        codec = LegacyKvCodec()
        assert codec.encode_request(Request(op="get", key=b"mykey")) \
            == kvstore.encode_get(b"mykey")
        assert codec.encode_request(
            Request(op="set", key=b"k", value=b"v" * 33)) \
            == kvstore.encode_put(b"k", b"v" * 33)

    def test_kv_decode_request_tuple_shape(self):
        op, key, value = kvstore.decode_request(kvstore.encode_get(b"a"))
        assert (op, key, value) == (kvstore.OP_GET, b"a", None)
        op, key, value = kvstore.decode_request(
            kvstore.encode_put(b"a", b"xyz"))
        assert (op, key, value) == (kvstore.OP_PUT, b"a", b"xyz")

    def test_kv_decode_request_rejects_truncation(self):
        # The old parser silently stored a truncated value here.
        whole = kvstore.encode_put(b"key", b"0123456789")
        for cut in range(1, len(whole)):
            with pytest.raises(CodecError):
                kvstore.decode_request(whole[:cut])

    def test_kv_decode_response(self):
        ok_wire = LegacyKvCodec().encode(
            Response(status=ST_VALUE, value=b"v"))
        assert kvstore.decode_response(ok_wire) == (True, b"v")
        miss_wire = LegacyKvCodec().encode(Response(status=ST_MISS))
        assert kvstore.decode_response(miss_wire) == (False, None)

    def test_cache_requests_byte_identical(self):
        codec = LegacyCacheCodec()
        assert codec.encode_request(
            Request(op="set", key=b"k", value=b"v", ttl_ms=250)) \
            == cache.encode_set(b"k", b"v", ttl_ms=250)
        assert codec.encode_request(Request(op="get", key=b"k")) \
            == cache.encode_get(b"k")
        assert codec.encode_request(Request(op="delete", key=b"k")) \
            == cache.encode_delete(b"k")

    def test_cache_decode_reply_statuses(self):
        codec = LegacyCacheCodec()
        assert cache.decode_reply(
            codec.encode(Response(status=ST_VALUE, value=b"x"))) \
            == (cache.ST_HIT, b"x")
        assert cache.decode_reply(codec.encode(Response(status=ST_MISS))) \
            == (cache.ST_MISS, None)
        assert cache.decode_reply(codec.encode(Response(status=ST_STORED))) \
            == (cache.ST_STORED, None)
        assert cache.decode_reply(
            codec.encode(Response(status=ST_COUNT, count=1))) \
            == (cache.ST_DELETED, None)
        assert cache.decode_reply(
            codec.encode(Response(status=ST_COUNT, count=0))) \
            == (cache.ST_MISS, None)

    def test_legacy_codecs_reject_inline_errors(self):
        # Neither legacy format has an error status on the wire.
        for codec in (LegacyKvCodec(), LegacyCacheCodec()):
            with pytest.raises(CodecError):
                codec.encode(Response(status=ST_ERROR, message="nope"))


def _request_wire(codec_cls):
    codec = codec_cls()
    reqs = [r for r in KV_REQUESTS
            if codec_cls is not LegacyKvCodec or r.op in ("get", "set")]
    if codec_cls is LegacyCacheCodec:
        reqs = [Request(op=r.op, key=r.key, value=r.value, ttl_ms=r.ttl_ms)
                for r in reqs]
    return b"".join(codec.encode_request(r) for r in reqs), reqs


class TestEverySplitOffset:
    """Splitting the stream at EVERY byte offset decodes identically."""

    @pytest.mark.parametrize("codec_cls", sorted(CODECS.values(),
                                                 key=lambda c: c.name),
                             ids=lambda c: c.name)
    def test_requests_split_anywhere(self, codec_cls):
        wire, _reqs = _request_wire(codec_cls)
        expected = codec_cls().feed(wire)
        assert expected, "script must decode to something"
        for cut in range(1, len(wire)):
            codec = codec_cls()
            got = codec.feed(wire[:cut]) + codec.feed(wire[cut:])
            assert got == expected, "split at %d diverged" % cut
            assert not codec.pending()

    @pytest.mark.parametrize("codec_cls", sorted(CODECS.values(),
                                                 key=lambda c: c.name),
                             ids=lambda c: c.name)
    def test_responses_split_anywhere(self, codec_cls):
        codec = codec_cls()
        encodable = [r for r in KV_RESPONSES
                     if codec_cls is not LegacyKvCodec
                     or r.status in (ST_STORED, ST_VALUE, ST_MISS)]
        wire = b"".join(codec.encode(r) for r in encodable)
        expected = codec_cls().feed_responses(wire)
        for cut in range(1, len(wire)):
            fresh = codec_cls()
            got = (fresh.feed_responses(wire[:cut])
                   + fresh.feed_responses(wire[cut:]))
            assert got == expected, "split at %d diverged" % cut


class TestRandomChunking:
    """Hypothesis: arbitrary chunkings are identity-preserving."""

    @given(st.data(), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_request_chunking_identity(self, data, rnd):
        codec_cls = data.draw(st.sampled_from(
            sorted(CODECS.values(), key=lambda c: c.name)))
        wire, _reqs = _request_wire(codec_cls)
        expected = codec_cls().feed(wire)
        codec = codec_cls()
        got = []
        offset = 0
        while offset < len(wire):
            size = rnd.randint(1, len(wire) - offset)
            got.extend(codec.feed(wire[offset:offset + size]))
            offset += size
        assert got == expected
        assert not codec.pending()

    @given(st.data(), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_response_chunking_identity(self, data, rnd):
        codec_cls = data.draw(st.sampled_from(
            sorted(CODECS.values(), key=lambda c: c.name)))
        encodable = [r for r in KV_RESPONSES
                     if codec_cls is not LegacyKvCodec
                     or r.status in (ST_STORED, ST_VALUE, ST_MISS)]
        wire = b"".join(codec_cls().encode(r) for r in encodable)
        expected = codec_cls().feed_responses(wire)
        codec = codec_cls()
        got = []
        offset = 0
        while offset < len(wire):
            size = rnd.randint(1, len(wire) - offset)
            got.extend(codec.feed_responses(wire[offset:offset + size]))
            offset += size
        assert got == expected
