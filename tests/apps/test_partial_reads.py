"""Partial-read framing across the legacy servers (the fixed bug).

Before the codec port, ``CacheServer`` fed each popped element straight
into a one-shot parser: a request split across two pops decoded garbage
or crashed, and a truncated PUT silently stored a truncated value.
These tests pin the fix end to end: every split offset of a request
stream serves identically, malformed bytes close a TCP stream (and only
that stream) or drop a UDP datagram (and only that datagram).
"""

from repro.apps.cache import (ST_DELETED, ST_HIT, ST_MISS, ST_STORED,
                              CacheServer, cache_client, encode_delete,
                              encode_get, encode_set)
from repro.apps.kvstore import (OP_GET, OP_PUT, DemiKvServer, UdpKvServer,
                                demi_kv_client, udp_kv_client)
from repro.apps.proto.legacy import LegacyCacheCodec
from repro.telemetry import names

from ..conftest import make_dpdk_libos_pair

CACHE_PORT = 11211


def chunked_cache_client(libos, server_addr, chunks, n_replies,
                         port=CACHE_PORT):
    """Push arbitrary byte chunks; decode replies incrementally."""
    codec = LegacyCacheCodec()
    qd = yield from libos.socket()
    yield from libos.connect(qd, server_addr, port)
    for chunk in chunks:
        yield from libos.blocking_push(qd, libos.sga_alloc(chunk))
    replies = []
    while len(replies) < n_replies:
        result = yield from libos.blocking_pop(qd)
        if result.error is not None:
            break
        replies.extend(codec.feed_responses(result.sga.tobytes()))
    yield from libos.close(qd)
    return replies


def run_cache_chunks(chunks, n_replies):
    w, client, server_libos = make_dpdk_libos_pair()
    server = CacheServer(server_libos)
    w.sim.spawn(server.start(), name="cache-server")
    cp = w.sim.spawn(
        chunked_cache_client(client, "10.0.0.2", chunks, n_replies))
    w.sim.run_until_complete(cp, limit=10**13)
    server.stop()
    w.run(until=w.sim.now + 5_000_000)
    return server, cp.value


#: SET(k)=v, GET(k) hit, DELETE(k), GET(k) miss - 4 replies
CACHE_SCRIPT = (encode_set(b"k", b"v", ttl_ms=0) + encode_get(b"k")
                + encode_delete(b"k") + encode_get(b"k"))
CACHE_EXPECTED = [ST_STORED, ST_HIT, ST_DELETED, ST_MISS]


class TestCacheServerSplitRequests:
    def test_every_split_offset_serves_identically(self):
        # Two pushes cut at EVERY byte boundary of the stream: the
        # request mix, reply order, and cache effects never change.
        for cut in range(1, len(CACHE_SCRIPT)):
            server, replies = run_cache_chunks(
                [CACHE_SCRIPT[:cut], CACHE_SCRIPT[cut:]],
                len(CACHE_EXPECTED))
            statuses = [s for s, _v in
                        ((r.status, r.value) for r in replies)]
            assert [r.status for r in replies] == [
                "stored", "value", "count", "miss"], \
                "split at %d diverged: %r" % (cut, statuses)
            assert replies[1].value == b"v"
            assert server.decode_errors == 0
            assert server.stats.sets == 1
            assert server.stats.hits == 1

    def test_one_byte_at_a_time(self):
        server, replies = run_cache_chunks(
            [bytes([b]) for b in CACHE_SCRIPT], len(CACHE_EXPECTED))
        assert [r.status for r in replies] == [
            "stored", "value", "count", "miss"]
        assert server.decode_errors == 0

    def test_pipelined_whole_script_in_one_push(self):
        server, replies = run_cache_chunks([CACHE_SCRIPT],
                                           len(CACHE_EXPECTED))
        assert len(replies) == 4
        assert server.decode_errors == 0

    def test_old_client_still_speaks_the_same_wire(self):
        # The unsplit path through the deprecated helpers is untouched.
        w, client, server_libos = make_dpdk_libos_pair()
        server = CacheServer(server_libos)
        w.sim.spawn(server.start(), name="cache-server")
        cp = w.sim.spawn(cache_client(client, "10.0.0.2", [
            encode_set(b"k", b"cached"), encode_get(b"k")]))
        w.sim.run_until_complete(cp, limit=10**13)
        server.stop()
        assert cp.value == [(ST_STORED, None), (ST_HIT, b"cached")]

    def test_garbage_closes_only_that_connection(self):
        w, client, server_libos = make_dpdk_libos_pair()
        server = CacheServer(server_libos)
        w.sim.spawn(server.start(), name="cache-server")

        def bad_then_good():
            # Unknown opcode 0xFF: desync, server must hang up.
            qd = yield from client.socket()
            yield from client.connect(qd, "10.0.0.2", CACHE_PORT)
            yield from client.blocking_push(
                qd, client.sga_alloc(b"\xff\x00\x01x"))
            result = yield from client.blocking_pop(qd)
            assert result.error is not None
            yield from client.close(qd)
            # A fresh connection is served normally.
            return (yield from cache_client(client, "10.0.0.2", [
                encode_set(b"k", b"v"), encode_get(b"k")]))

        cp = w.sim.spawn(bad_then_good())
        w.sim.run_until_complete(cp, limit=10**13)
        server.stop()
        assert cp.value == [(ST_STORED, None), (ST_HIT, b"v")]
        assert server.decode_errors == 1
        assert server_libos.counters.get(names.PROTO_DECODE_ERRORS) == 1


class TestDemiKvServerMalformedStream:
    def test_malformed_bytes_close_the_connection(self):
        w, client, server_libos = make_dpdk_libos_pair()
        server = DemiKvServer(server_libos, port=6379)
        sp = w.sim.spawn(server.run(), name="kv-server")

        def bad_then_good():
            qd = yield from client.socket()
            yield from client.connect(qd, "10.0.0.2", 6379)
            # 0xFF is not 'G' or 'P': stream desync, not a slow sender.
            yield from client.blocking_push(
                qd, client.sga_alloc(b"\xff\x00\x03abc"))
            result = yield from client.blocking_pop(qd)
            assert result.error is not None
            yield from client.close(qd)
            results, _stats = yield from demi_kv_client(
                client, "10.0.0.2",
                [(OP_PUT, b"k", b"v"), (OP_GET, b"k", None)])
            return results

        cp = w.sim.spawn(bad_then_good())
        w.sim.run_until_complete(cp, limit=10**13)
        server.stop()
        if sp.alive:
            sp.interrupt("test done")
        w.run(until=w.sim.now + 5_000_000)
        assert cp.value == [None, (True, b"v")]
        assert server.requests_served == 2  # the garbage served nothing
        assert server_libos.counters.get(
            names.KV_MALFORMED_REQUESTS) == 1


class TestUdpKvServerMalformedDatagram:
    def test_bad_datagram_dropped_server_keeps_serving(self):
        w, client, server_libos = make_dpdk_libos_pair()
        server = UdpKvServer(server_libos, port=6379)
        sp = w.sim.spawn(server.run(), name="udp-kv-server")

        def bad_then_good():
            qd = yield from client.socket("udp")
            yield from client.connect(qd, "10.0.0.2", 6379)
            # A malformed datagram gets no reply - UDP just drops it.
            yield from client.blocking_push(
                qd, client.sga_alloc(b"\xff\xffgarbage"))
            yield from client.close(qd)
            results, _stats = yield from udp_kv_client(
                client, "10.0.0.2",
                [(OP_PUT, b"k", b"v"), (OP_GET, b"k", None)])
            return results

        cp = w.sim.spawn(bad_then_good())
        w.sim.run_until_complete(cp, limit=10**13)
        server.stop()
        if sp.alive:
            sp.interrupt("test done")
        w.run(until=w.sim.now + 5_000_000)
        assert cp.value == [None, (True, b"v")]
        assert server.requests_served == 2
        assert server_libos.counters.get(
            names.KV_MALFORMED_REQUESTS) == 1

    def test_truncated_put_is_rejected_not_stored(self):
        # The original bug: a PUT cut short stored the partial value.
        # Now the truncated datagram is malformed and nothing lands.
        from repro.apps.kvstore import encode_put

        w, client, server_libos = make_dpdk_libos_pair()
        server = UdpKvServer(server_libos, port=6379)
        sp = w.sim.spawn(server.run(), name="udp-kv-server")
        truncated = encode_put(b"k", b"full-value")[:-4]

        def body():
            qd = yield from client.socket("udp")
            yield from client.connect(qd, "10.0.0.2", 6379)
            yield from client.blocking_push(qd, client.sga_alloc(truncated))
            yield from client.close(qd)
            results, _stats = yield from udp_kv_client(
                client, "10.0.0.2", [(OP_GET, b"k", None)])
            return results

        cp = w.sim.spawn(body())
        w.sim.run_until_complete(cp, limit=10**13)
        server.stop()
        if sp.alive:
            sp.interrupt("test done")
        w.run(until=w.sim.now + 5_000_000)
        assert cp.value == [(False, None)]  # nothing stored, not garbage
        assert server.engine.puts == 0
        assert server_libos.counters.get(
            names.KV_MALFORMED_REQUESTS) == 1
