"""Tests for worker pools (C4) and steering pipelines (C6)."""

from repro.apps.eventloop import EpollWorkerPool, WaitAnyWorkerPool
from repro.apps.steering import SteeringPipeline, partition_of
from repro.core.api import LibOS

from ..conftest import World, make_kernel_pair


class TestEpollWorkerPool:
    def _run(self, n_workers, n_requests):
        w, ka, kb = make_kernel_pair(cores=n_workers + 2)
        pool = EpollWorkerPool(kb, n_workers)

        def client():
            sys = ka.thread()
            fd = yield from sys.socket()
            yield from sys.connect(fd, "10.0.0.2", 80)
            for i in range(n_requests):
                yield from sys.send(fd, b"req-%d" % i)
                yield from sys.recv(fd)  # wait for the echo

        def server_main():
            sys = kb.thread()
            lfd = yield from sys.socket()
            yield from sys.bind(lfd, 80)
            yield from sys.listen(lfd)
            conn_fd = yield from sys.accept(lfd)
            epfd = yield from sys.epoll_create()
            yield from sys.epoll_ctl_add(epfd, conn_fd)
            pool.start(epfd, conn_fd)

        w.sim.spawn(server_main())
        cp = w.sim.spawn(client())
        w.sim.run_until_complete(cp, limit=10**12)
        pool.stop()
        w.run(until=w.sim.now + 1_000_000)
        return pool

    def test_serves_all_requests(self):
        pool = self._run(n_workers=2, n_requests=5)
        assert pool.requests_served == 5

    def test_herd_wastes_wakeups(self):
        pool = self._run(n_workers=4, n_requests=10)
        assert pool.requests_served == 10
        # Every request woke more workers than it fed.
        assert pool.wasted_wakeups > 0
        assert pool.wakeups > pool.requests_served


class TestWaitAnyWorkerPool:
    def _run(self, n_workers, n_requests):
        w = World()
        host = w.add_host("h", cores=n_workers + 1)
        libos = LibOS(host, "demi")
        qd = libos.queue()
        pool = WaitAnyWorkerPool(libos, n_workers)
        pool.start(qd, reply=False)

        def producer():
            for i in range(n_requests):
                yield from libos.blocking_push(
                    qd, libos.sga_alloc(b"req-%d" % i))
                yield w.sim.timeout(10_000)

        pp = w.sim.spawn(producer())
        w.sim.run_until_complete(pp, limit=10**12)
        w.run(until=w.sim.now + 1_000_000)
        pool.stop()
        w.run(until=w.sim.now + 1_000_000)
        return pool

    def test_serves_all_requests(self):
        pool = self._run(n_workers=2, n_requests=5)
        assert pool.requests_served == 5

    def test_zero_wasted_wakeups(self):
        """The C4 contrast: same N workers, zero waste."""
        pool = self._run(n_workers=4, n_requests=10)
        assert pool.requests_served == 10
        assert pool.wasted_wakeups == 0
        assert pool.wakeups == pool.requests_served


class TestSteering:
    def _make(self, with_offload):
        w = World()
        host = w.add_host("h")
        libos = LibOS(host, "demi")
        if with_offload:
            from repro.hw.offload import OffloadEngine
            libos.offload_engine = OffloadEngine(host)
        return w, libos

    def test_elements_reach_their_partition(self):
        w, libos = self._make(False)
        pipeline = SteeringPipeline(libos, n_partitions=4)
        payloads = [bytes([i]) + b"-data" for i in range(16)]

        def proc():
            yield from pipeline.inject(payloads)
            out = {}
            for p in range(4):
                out[p] = yield from pipeline.drain_partition(p, 4)
            return out

        pr = w.sim.spawn(proc())
        w.sim.run_until_complete(pr, limit=10**12)
        out = pr.value
        for p in range(4):
            assert len(out[p]) == 4
            for payload in out[p]:
                assert payload[0] % 4 == p
        assert pipeline.routed == 16

    def test_device_placement_saves_host_cpu(self):
        def host_cpu(with_offload):
            w, libos = self._make(with_offload)
            pipeline = SteeringPipeline(libos, n_partitions=2)
            payloads = [bytes([i % 2]) + b"x" * 63 for i in range(200)]

            def proc():
                yield from pipeline.inject(payloads)
                yield from pipeline.drain_partition(0, 100)
                yield from pipeline.drain_partition(1, 100)

            pr = w.sim.spawn(proc())
            w.sim.run_until_complete(pr, limit=10**12)
            pipeline.stop()
            return libos.core.busy_ns

        cpu_placed = host_cpu(False)
        device_placed = host_cpu(True)
        expected_saving = 200 * 250  # elements x pipeline_element_cpu_ns
        assert cpu_placed - device_placed >= expected_saving * 0.9

    def test_partition_of_is_stable(self, world):
        host = world.add_host("h")
        libos = LibOS(host, "demi")
        sga = libos.sga_alloc(bytes([7]) + b"xyz")
        assert partition_of(sga, 4) == 3
        assert partition_of(sga, 2) == 1
