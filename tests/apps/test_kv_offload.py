"""End-to-end tests for the NIC-resident KV GET path (claim C6).

A :class:`KvNicOffload` program installed on the server's programmable
NIC parses UDP KV requests in the RX pipeline: short GETs are answered
entirely on the device (zero host CPU), PUTs and oversized values are
steered to the owning shard's RX queue, and everything else punts to the
normal RSS path untouched.
"""

import pytest

from repro.apps.kvstore import (OP_GET, OP_PUT, KvNicOffload, UdpKvServer,
                                udp_kv_client)

from ..conftest import make_dpdk_libos_pair


def run_kv(ops, with_program=True, port=6379):
    w, client, server = make_dpdk_libos_pair(with_offload=True)
    srv = UdpKvServer(server, port=port)
    prog = None
    if with_program:
        prog = KvNicOffload(server.nic, srv.engine, server.ip, port=port)
        prog.install()
    w.sim.spawn(srv.run(), name="server")

    def body():
        return (yield from udp_kv_client(client, server.ip, ops, port=port))

    cproc = w.sim.spawn(body(), name="client")
    w.sim.run_until_complete(cproc, limit=10**12)
    srv.stop()
    w.sim.run(until=w.sim.now + 5_000_000)
    results, stats = cproc.value
    return w, client, server, srv, prog, results


class TestNicGetPath:
    def test_gets_answered_on_device_with_correct_values(self):
        ops = ([(OP_PUT, b"k%d" % i, b"value-%d" % i) for i in range(4)]
               + [(OP_GET, b"k%d" % i, None) for i in range(4)])
        w, client, server, srv, prog, results = run_kv(ops)
        gets = [r for r in results if r is not None]
        assert gets == [(True, b"value-%d" % i) for i in range(4)]
        assert prog.hits == 4
        # The host never saw the GETs - only the 4 PUTs.
        assert srv.requests_served == 4
        assert prog.steered == 4

    def test_missing_key_answered_on_device(self):
        w, client, server, srv, prog, results = run_kv(
            [(OP_GET, b"nope", None)])
        assert results == [(False, None)]
        assert prog.misses == 1
        assert srv.requests_served == 0

    def test_host_cpu_drops_with_program_installed(self):
        ops = ([(OP_PUT, b"k", b"v" * 64)]
               + [(OP_GET, b"k", None)] * 50)
        _, _, server_off, _, _, r1 = run_kv(ops, with_program=True)
        _, _, server_host, _, _, r2 = run_kv(ops, with_program=False)
        assert r1 == r2  # same answers either way
        assert server_off.core.busy_ns < server_host.core.busy_ns / 2

    def test_oversized_values_steer_to_host(self):
        w, client, server, srv, prog, results = run_kv(
            [(OP_PUT, b"big", b"x" * 1400), (OP_GET, b"big", None)])
        assert results[-1] == (True, b"x" * 1400)
        assert prog.hits == 0  # too big to inline on the NIC
        assert prog.steered == 2  # the PUT and the punted GET
        assert srv.requests_served == 2

    def test_qtoken_ledger_closes_on_both_sides(self):
        ops = ([(OP_PUT, b"k", b"v")] + [(OP_GET, b"k", None)] * 10)
        w, client, server, srv, prog, _ = run_kv(ops)
        for libos in (client, server):
            qt = libos.qtokens
            assert qt.in_flight == 0
            assert qt.created == qt.completed + qt.cancelled + qt.in_flight

    def test_non_kv_traffic_punts_to_host_unharmed(self):
        """A second UDP flow on another port coexists with the program."""
        w, client, server = make_dpdk_libos_pair(with_offload=True)
        srv = UdpKvServer(server, port=6379)
        prog = KvNicOffload(server.nic, srv.engine, server.ip, port=6379)
        prog.install()

        def echo_server():
            qd = yield from server.socket("udp")
            yield from server.bind(qd, 7000)
            result = yield from server.blocking_pop(qd)
            token = server.push_to(qd, result.sga, result.value)
            yield from server.qtokens.wait(token)

        def sender():
            qd = yield from client.socket("udp")
            yield from client.connect(qd, server.ip, 7000)
            yield from client.blocking_push(qd, client.sga_alloc(b"ping"))
            result = yield from client.blocking_pop(qd)
            return result.sga.tobytes()

        w.sim.spawn(echo_server(), name="echo")
        p = w.sim.spawn(sender(), name="sender")
        w.sim.run_until_complete(p, limit=10**12)
        assert p.value == b"ping"
        assert prog.punts > 0  # the foreign-port frames went to RSS
        assert prog.hits == prog.misses == prog.steered == 0


class TestInstallationGuards:
    def test_program_requires_offload_engine(self):
        w, client, server = make_dpdk_libos_pair(with_offload=False)
        srv = UdpKvServer(server, port=6379)
        with pytest.raises(ValueError):
            KvNicOffload(server.nic, srv.engine, server.ip)

    def test_install_rx_program_requires_offload_engine(self):
        w, client, server = make_dpdk_libos_pair(with_offload=False)
        with pytest.raises(ValueError):
            server.nic.install_rx_program(lambda frame: None)

    def test_uninstall_restores_host_path(self):
        ops = [(OP_PUT, b"k", b"v"), (OP_GET, b"k", None)]
        w, client, server = make_dpdk_libos_pair(with_offload=True)
        srv = UdpKvServer(server, port=6379)
        prog = KvNicOffload(server.nic, srv.engine, server.ip, port=6379)
        prog.install()
        prog.uninstall()
        w.sim.spawn(srv.run(), name="server")

        def body():
            return (yield from udp_kv_client(client, server.ip, ops))

        p = w.sim.spawn(body(), name="client")
        w.sim.run_until_complete(p, limit=10**12)
        srv.stop()
        w.sim.run(until=w.sim.now + 5_000_000)
        results, _stats = p.value
        assert results[-1] == (True, b"v")
        assert prog.hits == 0
        assert srv.requests_served == 2  # everything back on the host
