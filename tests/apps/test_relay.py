"""Tests for the qconnect relay: three hosts, two hops, zero app code."""

from repro.apps.echo import demi_echo_server
from repro.apps.relay import run_relay
from repro.libos.dpdk_libos import DpdkLibOS
from repro.testbed import World


def build_three_hosts():
    """client <-> relay <-> backend, all DPDK libOSes on one fabric."""
    w = World()
    liboses = {}
    for i, (name, ip) in enumerate((("client", "10.0.0.1"),
                                    ("relay", "10.0.0.2"),
                                    ("backend", "10.0.0.3"))):
        host = w.add_host(name)
        nic = w.add_dpdk(host, mac="02:00:00:00:70:%02x" % (i + 1))
        liboses[name] = DpdkLibOS(host, nic, ip, name="%s.catnip" % name)
    return w, liboses


class TestRelay:
    def test_end_to_end_through_the_relay(self):
        w, liboses = build_three_hosts()
        # Backend: a plain echo server.
        w.sim.spawn(demi_echo_server(liboses["backend"], port=9))
        # Relay: listen on 7, forward to backend:9.
        relay_proc = w.sim.spawn(
            run_relay(liboses["relay"], 7, "10.0.0.3", 9))

        def client_proc():
            client = liboses["client"]
            qd = yield from client.socket()
            yield from client.connect(qd, "10.0.0.2", 7)
            out = []
            for i in range(5):
                yield from client.blocking_push(
                    qd, client.sga_alloc(b"via-relay-%d" % i))
                result = yield from client.blocking_pop(qd)
                out.append(result.sga.tobytes())
            return out

        cp = w.sim.spawn(client_proc())
        w.sim.run_until_complete(cp, limit=10**13)
        assert cp.value == [b"via-relay-%d" % i for i in range(5)]
        forward, backward = relay_proc.value
        assert forward.moved == 5
        assert backward.moved == 5

    def test_relay_adds_one_hop_of_latency(self):
        # Direct: client -> backend.
        w1, liboses1 = build_three_hosts()
        w1.sim.spawn(demi_echo_server(liboses1["backend"], port=9))

        def direct_client():
            client = liboses1["client"]
            qd = yield from client.socket()
            yield from client.connect(qd, "10.0.0.3", 9)
            # warm up, then measure
            for _ in range(2):
                yield from client.blocking_push(qd, client.sga_alloc(b"w"))
                yield from client.blocking_pop(qd)
            start = w1.sim.now
            yield from client.blocking_push(qd, client.sga_alloc(b"m"))
            yield from client.blocking_pop(qd)
            return w1.sim.now - start

        p1 = w1.sim.spawn(direct_client())
        w1.sim.run_until_complete(p1, limit=10**13)
        direct_rtt = p1.value

        # Relayed: client -> relay -> backend.
        w2, liboses2 = build_three_hosts()
        w2.sim.spawn(demi_echo_server(liboses2["backend"], port=9))
        w2.sim.spawn(run_relay(liboses2["relay"], 7, "10.0.0.3", 9))

        def relayed_client():
            client = liboses2["client"]
            qd = yield from client.socket()
            yield from client.connect(qd, "10.0.0.2", 7)
            for _ in range(2):
                yield from client.blocking_push(qd, client.sga_alloc(b"w"))
                yield from client.blocking_pop(qd)
            start = w2.sim.now
            yield from client.blocking_push(qd, client.sga_alloc(b"m"))
            yield from client.blocking_pop(qd)
            return w2.sim.now - start

        p2 = w2.sim.spawn(relayed_client())
        w2.sim.run_until_complete(p2, limit=10**13)
        relayed_rtt = p2.value

        # One extra network hop each way: roughly up to 2x, never less.
        assert direct_rtt < relayed_rtt < 3 * direct_rtt
