"""Tests for the memcached-like cache server on the event loop."""

from repro.apps.cache import (
    ST_DELETED,
    ST_HIT,
    ST_MISS,
    ST_STORED,
    CacheServer,
    cache_client,
    encode_delete,
    encode_get,
    encode_set,
)

from ..conftest import make_dpdk_libos_pair


def run_requests(requests, max_entries=1024, extra_sim_ns=0):
    w, client, server_libos = make_dpdk_libos_pair()
    server = CacheServer(server_libos, max_entries=max_entries)
    w.sim.spawn(server.start(), name="cache-server")
    cp = w.sim.spawn(cache_client(client, "10.0.0.2", requests))
    w.sim.run_until_complete(cp, limit=10**13)
    if extra_sim_ns:
        w.run(until=w.sim.now + extra_sim_ns)
    server.stop()
    return w, server, cp.value


class TestBasicOps:
    def test_set_then_get(self):
        _w, server, replies = run_requests([
            encode_set(b"k", b"cached-value"),
            encode_get(b"k"),
        ])
        assert replies[0] == (ST_STORED, None)
        assert replies[1] == (ST_HIT, b"cached-value")
        assert server.stats.hits == 1

    def test_get_missing_misses(self):
        _w, server, replies = run_requests([encode_get(b"nope")])
        assert replies == [(ST_MISS, None)]
        assert server.stats.misses == 1

    def test_delete(self):
        _w, server, replies = run_requests([
            encode_set(b"k", b"v"),
            encode_delete(b"k"),
            encode_get(b"k"),
            encode_delete(b"k"),
        ])
        assert replies[1] == (ST_DELETED, None)
        assert replies[2] == (ST_MISS, None)
        assert replies[3] == (ST_MISS, None)

    def test_overwrite(self):
        _w, _server, replies = run_requests([
            encode_set(b"k", b"old"),
            encode_set(b"k", b"new"),
            encode_get(b"k"),
        ])
        assert replies[2] == (ST_HIT, b"new")


class TestLru:
    def test_eviction_at_capacity(self):
        requests = [encode_set(b"key-%d" % i, b"v") for i in range(6)]
        requests.append(encode_get(b"key-0"))  # evicted (oldest)
        requests.append(encode_get(b"key-5"))  # still present
        _w, server, replies = run_requests(requests, max_entries=4)
        assert server.stats.evictions == 2
        assert replies[-2] == (ST_MISS, None)
        assert replies[-1] == (ST_HIT, b"v")

    def test_get_refreshes_lru_position(self):
        requests = [
            encode_set(b"a", b"1"),
            encode_set(b"b", b"2"),
            encode_get(b"a"),          # touch a: b becomes LRU
            encode_set(b"c", b"3"),    # evicts b
            encode_get(b"a"),
            encode_get(b"b"),
        ]
        _w, _server, replies = run_requests(requests, max_entries=2)
        assert replies[-2] == (ST_HIT, b"1")
        assert replies[-1] == (ST_MISS, None)


class TestTtl:
    def test_expired_entry_misses_on_access(self):
        w, client, server_libos = make_dpdk_libos_pair()
        server = CacheServer(server_libos)
        w.sim.spawn(server.start(), name="cache-server")

        def scenario():
            replies = yield from cache_client(
                client, "10.0.0.2", [encode_set(b"t", b"v", ttl_ms=1)])
            yield w.sim.timeout(2_000_000)  # 2 ms > 1 ms TTL
            replies += yield from cache_client(
                client, "10.0.0.2", [encode_get(b"t")])
            return replies

        p = w.sim.spawn(scenario())
        w.sim.run_until_complete(p, limit=10**13)
        server.stop()
        assert p.value[0] == (ST_STORED, None)
        assert p.value[1] == (ST_MISS, None)
        assert server.stats.expirations >= 1

    def test_timer_sweep_removes_expired_entries(self):
        w, client, server_libos = make_dpdk_libos_pair()
        server = CacheServer(server_libos)
        w.sim.spawn(server.start(), name="cache-server")

        def scenario():
            yield from cache_client(client, "10.0.0.2", [
                encode_set(b"short", b"v", ttl_ms=1),
                encode_set(b"forever", b"v"),
            ])
            # Let the periodic sweep (1 ms cadence) run past the TTL.
            yield w.sim.timeout(5_000_000)
            return server.entry_count

        p = w.sim.spawn(scenario())
        w.sim.run_until_complete(p, limit=10**13)
        server.stop()
        assert p.value == 1  # only the TTL-free entry survives
        assert server.stats.expirations == 1

    def test_ttl_zero_never_expires(self):
        w, client, server_libos = make_dpdk_libos_pair()
        server = CacheServer(server_libos)
        w.sim.spawn(server.start(), name="cache-server")

        def scenario():
            yield from cache_client(client, "10.0.0.2",
                                    [encode_set(b"k", b"v", ttl_ms=0)])
            yield w.sim.timeout(10_000_000)
            return (yield from cache_client(client, "10.0.0.2",
                                            [encode_get(b"k")]))

        p = w.sim.spawn(scenario())
        w.sim.run_until_complete(p, limit=10**13)
        server.stop()
        assert p.value == [(ST_HIT, b"v")]


class TestMultipleClients:
    def test_two_connections_share_the_cache(self):
        w, client, server_libos = make_dpdk_libos_pair()
        server = CacheServer(server_libos)
        w.sim.spawn(server.start(), name="cache-server")

        def writer():
            return (yield from cache_client(
                client, "10.0.0.2", [encode_set(b"shared", b"data")]))

        wp = w.sim.spawn(writer())
        w.sim.run_until_complete(wp, limit=10**13)

        def reader():
            return (yield from cache_client(
                client, "10.0.0.2", [encode_get(b"shared")]))

        rp = w.sim.spawn(reader())
        w.sim.run_until_complete(rp, limit=10**13)
        server.stop()
        assert rp.value == [(ST_HIT, b"data")]
