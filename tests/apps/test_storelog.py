"""Tests for the log-writer storage workload on both stacks."""

from repro.apps.storelog import demi_log_writer, posix_log_writer
from repro.kernelos.kernel import Kernel
from repro.kernelos.vfs import Vfs

from ..conftest import World, make_spdk_libos

RECORDS = [b"record-%04d-" % i + b"x" * 500 for i in range(32)]


def make_vfs_host():
    w = World()
    host = w.add_host("h")
    kernel = Kernel(host, w.fabric, "02:00:00:00:03:01", "10.0.0.9")
    nvme = w.add_nvme(host)
    Vfs(kernel, nvme)
    return w, kernel


class TestDemiLogWriter:
    def test_writes_and_reads_back(self):
        w, libos = make_spdk_libos()
        p = w.sim.spawn(demi_log_writer(libos, RECORDS, sync_every=8))
        w.run()
        stats, readback = p.value
        assert readback == RECORDS
        assert stats.count == 4  # 32 records / 8 per sync

    def test_no_kernel_involvement(self):
        w, libos = make_spdk_libos()
        p = w.sim.spawn(demi_log_writer(libos, RECORDS[:8]))
        w.run()
        assert all("kernel" not in key for key in w.tracer.counters)


class TestPosixLogWriter:
    def test_writes_and_reads_back(self):
        w, kernel = make_vfs_host()
        p = w.sim.spawn(posix_log_writer(kernel, RECORDS, sync_every=8))
        w.run()
        stats, readback = p.value
        assert readback == RECORDS
        assert stats.count == 4

    def test_pays_syscalls_and_copies(self):
        w, kernel = make_vfs_host()
        p = w.sim.spawn(posix_log_writer(kernel, RECORDS[:8]))
        w.run()
        assert w.tracer.get("h.kernel.syscalls") > 8
        total = sum(len(r) for r in RECORDS[:8])
        assert w.tracer.get("h.kernel.bytes_copied_tx") == total


class TestStorShape:
    def test_demikernel_storage_path_is_faster(self):
        """The STOR experiment's expected shape."""
        w1, libos = make_spdk_libos()
        p1 = w1.sim.spawn(demi_log_writer(libos, RECORDS, sync_every=4))
        w1.run()
        demi_batch = p1.value[0].mean

        w2, kernel = make_vfs_host()
        p2 = w2.sim.spawn(posix_log_writer(kernel, RECORDS, sync_every=4))
        w2.run()
        posix_batch = p2.value[0].mean

        # Flash time dominates both, but the kernel adds block-layer and
        # syscall overhead per operation: strictly slower.
        assert posix_batch > demi_batch
