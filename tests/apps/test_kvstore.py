"""Tests for the Redis-like KV store on both frontends."""

from repro.apps.kvstore import (
    OP_GET,
    OP_PUT,
    DemiKvServer,
    KvEngine,
    decode_response,
    demi_kv_client,
    encode_get,
    encode_put,
    kv_workload,
    posix_kv_client,
    posix_kv_server,
)
from repro.sim.rand import Rng

from ..conftest import make_dpdk_libos_pair, make_kernel_pair


class TestCodec:
    def test_get_roundtrip(self):
        from repro.apps.kvstore import decode_request
        op, key, value = decode_request(encode_get(b"mykey"))
        assert (op, key, value) == (OP_GET, b"mykey", None)

    def test_put_roundtrip(self):
        from repro.apps.kvstore import decode_request
        op, key, value = decode_request(encode_put(b"k", b"v" * 100))
        assert (op, key, value) == (OP_PUT, b"k", b"v" * 100)

    def test_response_decode(self):
        import struct
        ok, value = decode_response(struct.pack("!BI", ord("K"), 3) + b"abc")
        assert ok and value == b"abc"
        ok, value = decode_response(bytes([ord("N")]))
        assert not ok and value is None


class TestEngine:
    def test_put_get(self, world):
        host = world.add_host("h")
        engine = KvEngine(host)
        engine.put(b"k", b"value")
        assert engine.get(b"k").read(0, 5) == b"value"
        assert engine.misses == 0

    def test_miss_counted(self, world):
        host = world.add_host("h")
        engine = KvEngine(host)
        assert engine.get(b"nope") is None
        assert engine.misses == 1

    def test_put_swaps_buffer_and_frees_old(self, world):
        host = world.add_host("h")
        engine = KvEngine(host)
        old = engine.put(b"k", b"old")
        new = engine.put(b"k", b"new")
        assert old is not new
        assert old.freed          # section 4.5: old buffer freed on swap
        assert not new.freed

    def test_put_with_inflight_dma_defers_free(self, world):
        """Free-protection in the Redis pattern: the swapped-out value is
        mid-DMA (a zero-copy GET response); the free defers."""
        host = world.add_host("h")
        engine = KvEngine(host)
        old = engine.put(b"k", b"old-value")
        old.hold()  # NIC is sending this value right now
        engine.put(b"k", b"new-value")
        assert old.freed and not old.deallocated
        old.release()
        assert old.deallocated
        assert world.tracer.get("mm.deferred_frees") == 1


class TestDemiKvServer:
    def run_ops(self, operations):
        w, client, server_libos = make_dpdk_libos_pair()
        server = DemiKvServer(server_libos)
        w.sim.spawn(server.run(), name="kv-server")
        cp = w.sim.spawn(demi_kv_client(client, "10.0.0.2", operations))
        w.sim.run_until_complete(cp, limit=10**12)
        server.stop()
        w.run(until=w.sim.now + 10_000_000)
        return w, server, cp.value

    def test_put_then_get(self):
        ops = [(OP_PUT, b"hello", b"world"), (OP_GET, b"hello", None)]
        _w, server, (results, _stats) = self.run_ops(ops)
        assert results[1] == (True, b"world")
        assert server.requests_served == 2

    def test_get_missing_key(self):
        ops = [(OP_GET, b"ghost", None)]
        _w, _server, (results, _) = self.run_ops(ops)
        assert results[0] == (False, None)

    def test_overwrite_returns_new_value(self):
        ops = [
            (OP_PUT, b"k", b"v1"),
            (OP_PUT, b"k", b"v2-new"),
            (OP_GET, b"k", None),
        ]
        _w, _server, (results, _) = self.run_ops(ops)
        assert results[2] == (True, b"v2-new")

    def test_many_operations(self):
        rng = Rng(7)
        ops = kv_workload(rng, 50, n_keys=10, value_size=128,
                          get_fraction=0.5)
        _w, server, (results, stats) = self.run_ops(ops)
        assert server.requests_served == 50
        assert stats.count == 50
        # GETs on keys already PUT must return their latest values.
        latest = {}
        for (op, key, value), result in zip(ops, results):
            if op == OP_PUT:
                latest[key] = value
            else:
                ok, got = result
                if key in latest:
                    assert ok and got == latest[key]


class TestPosixKvServer:
    def test_put_then_get(self):
        w, ka, kb = make_kernel_pair()
        engine = KvEngine(kb.host)
        ops = [(OP_PUT, b"hello", b"world"), (OP_GET, b"hello", None)]
        w.sim.spawn(posix_kv_server(kb, engine, max_requests=2))
        cp = w.sim.spawn(posix_kv_client(ka, "10.0.0.2", ops))
        w.run()
        results, _ = cp.value
        assert results[1] == (True, b"world")

    def test_posix_get_copies_value(self):
        w, ka, kb = make_kernel_pair()
        engine = KvEngine(kb.host)
        ops = [(OP_PUT, b"k", b"v" * 4096), (OP_GET, b"k", None)]
        w.sim.spawn(posix_kv_server(kb, engine, max_requests=2))
        cp = w.sim.spawn(posix_kv_client(ka, "10.0.0.2", ops))
        w.run()
        assert w.tracer.get("server.kernel.kv_value_copies") == 1

    def test_copy_overhead_shows_in_latency(self):
        """Claim C2's mechanism: POSIX GET latency grows with value size
        faster than the zero-copy Demikernel GET."""
        def posix_get_rtt(value_size):
            w, ka, kb = make_kernel_pair()
            engine = KvEngine(kb.host)
            ops = ([(OP_PUT, b"k", b"v" * value_size)]
                   + [(OP_GET, b"k", None)] * 5)
            w.sim.spawn(posix_kv_server(kb, engine, max_requests=6))
            cp = w.sim.spawn(posix_kv_client(ka, "10.0.0.2", ops))
            w.run()
            return cp.value[1].p50

        def demi_get_rtt(value_size):
            w, client, server_libos = make_dpdk_libos_pair()
            server = DemiKvServer(server_libos)
            w.sim.spawn(server.run())
            ops = ([(OP_PUT, b"k", b"v" * value_size)]
                   + [(OP_GET, b"k", None)] * 5)
            cp = w.sim.spawn(demi_kv_client(client, "10.0.0.2", ops))
            w.sim.run_until_complete(cp, limit=10**12)
            server.stop()
            return cp.value[1].p50

        posix_delta = posix_get_rtt(8192) - posix_get_rtt(64)
        demi_delta = demi_get_rtt(8192) - demi_get_rtt(64)
        assert posix_delta > demi_delta * 1.5
