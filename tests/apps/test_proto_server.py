"""ProtoServer integration: real protocols on real libOS pairs.

The tentpole claim: one server body speaks RESP or memcached-binary
(or the legacy formats) against any libOS and, via ShardProtoServer,
against the sharded cluster - only the codec changes.  These tests run
actual connections end to end: pipelined batches, byte-split writes,
inline protocol errors vs. stream desync, TTL through the cache store,
and RSS-steered sharded serving.
"""

import pytest

from repro.apps.cache import LruTtlCache
from repro.apps.kvstore import KvEngine
from repro.apps.proto import (KvEngineStore, LegacyKvCodec, LruCacheStore,
                              MemcachedCodec, ProtoServer, RespCodec)
from repro.apps.proto.codec import (ST_COUNT, ST_ERROR, ST_MISS, ST_PONG,
                                    ST_STORED, ST_VALUE, Request)
from repro.apps.steering import key_partition
from repro.cluster.client import src_port_for_queue
from repro.cluster.shard import ShardProtoServer
from repro.testbed import make_sharded_kv_world

from ..conftest import make_dpdk_libos_pair, make_posix_libos_pair

PORT = 6390
SHARD_PORT = 6379

#: the canonical four-request script every protocol must serve
SCRIPT = [
    Request(op="set", key=b"alpha", value=b"0123456789", opaque=1),
    Request(op="get", key=b"alpha", opaque=2),
    Request(op="get", key=b"missing", opaque=3),
    Request(op="ping", opaque=4),
]
SCRIPT_STATUSES = [ST_STORED, ST_VALUE, ST_MISS, ST_PONG]


def script_client(libos, codec_cls, chunks, n_replies, port=PORT):
    """Spawn-me: push the pre-encoded chunks, collect n_replies."""
    codec = codec_cls()
    qd = yield from libos.socket()
    yield from libos.connect(qd, "10.0.0.2", port)
    for chunk in chunks:
        yield from libos.blocking_push(qd, libos.sga_alloc(chunk))
    replies = []
    while len(replies) < n_replies:
        result = yield from libos.blocking_pop(qd)
        if result.error is not None:
            break  # server hung up on us
        replies.extend(codec.feed_responses(result.sga.tobytes()))
    yield from libos.close(qd)
    return replies


def serve(make_pair, codec_cls, chunks, n_replies, store="kv"):
    """Full round trip: ProtoServer + scripted client on a libOS pair."""
    w, client, server_libos = make_pair()
    if store == "kv":
        backing = KvEngineStore(KvEngine(server_libos.host, name="test.kv"))
    else:
        backing = LruCacheStore(
            LruTtlCache(lambda: server_libos.sim.now))
    server = ProtoServer(server_libos, codec_cls, backing, port=PORT)
    sp = w.sim.spawn(server.start(), name="proto-server")
    cp = w.sim.spawn(script_client(client, codec_cls, chunks, n_replies))
    w.sim.run_until_complete(cp, limit=10**13)
    server.stop()
    if sp.alive:
        sp.interrupt("test done")
    w.run(until=w.sim.now + 5_000_000)
    t = server_libos.qtokens
    assert t.created == t.completed + t.cancelled + t.in_flight
    return server, cp.value


def wire_for(codec_cls, requests=SCRIPT):
    codec = codec_cls()
    return b"".join(codec.encode_request(r) for r in requests)


def chunked(wire, size):
    return [wire[i:i + size] for i in range(0, len(wire), size)]


class TestProtoServerPairs:
    """Same script, every codec x libOS combination, pipelined + split."""

    @pytest.mark.parametrize("codec_cls", [RespCodec, MemcachedCodec],
                             ids=lambda c: c.name)
    @pytest.mark.parametrize("make_pair,libos_id",
                             [(make_dpdk_libos_pair, "dpdk"),
                              (make_posix_libos_pair, "posix")],
                             ids=["dpdk", "posix"])
    def test_pipelined_script(self, codec_cls, make_pair, libos_id):
        # All four requests in ONE push: the server must decode the
        # batch, serve in order, and may coalesce the replies.
        server, replies = serve(make_pair, codec_cls,
                                [wire_for(codec_cls)], len(SCRIPT))
        assert [r.status for r in replies] == SCRIPT_STATUSES
        assert replies[1].value == b"0123456789"
        assert server.requests_served == len(SCRIPT)
        assert server.decode_errors == 0

    @pytest.mark.parametrize("codec_cls", [RespCodec, MemcachedCodec],
                             ids=lambda c: c.name)
    @pytest.mark.parametrize("make_pair,libos_id",
                             [(make_dpdk_libos_pair, "dpdk"),
                              (make_posix_libos_pair, "posix")],
                             ids=["dpdk", "posix"])
    def test_byte_split_script(self, codec_cls, make_pair, libos_id):
        # The same wire bytes delivered three bytes at a time: the
        # incremental codec must reassemble across pops.
        server, replies = serve(make_pair, codec_cls,
                                chunked(wire_for(codec_cls), 3), len(SCRIPT))
        assert [r.status for r in replies] == SCRIPT_STATUSES
        assert replies[1].value == b"0123456789"
        assert server.decode_errors == 0

    def test_memcached_opaque_mirrored(self):
        _server, replies = serve(make_dpdk_libos_pair, MemcachedCodec,
                                 [wire_for(MemcachedCodec)], len(SCRIPT))
        assert [r.opaque for r in replies] == [1, 2, 3, 4]

    def test_legacy_kv_codec_behind_proto_server(self):
        # The ported legacy format runs on the same server body.
        script = [Request(op="set", key=b"k", value=b"v"),
                  Request(op="get", key=b"k")]
        server, replies = serve(make_dpdk_libos_pair, LegacyKvCodec,
                                [wire_for(LegacyKvCodec, script)],
                                len(script))
        # Legacy-kv acks a PUT as OK+empty value on the wire.
        assert replies[0].status in (ST_STORED, ST_VALUE)
        assert replies[1].value == b"v"
        assert server.requests_served == 2


class TestErrorPolicy:
    def test_resp_inline_error_keeps_connection(self):
        # Unknown command -> -ERR reply, and the NEXT request still
        # gets served: framing survived, only semantics failed.
        codec = RespCodec()
        wire = (codec.encode_request(Request(op="set", key=b"k",
                                             value=b"v"))
                + b"*1\r\n$5\r\nBLPOP\r\n"
                + codec.encode_request(Request(op="get", key=b"k")))
        server, replies = serve(make_dpdk_libos_pair, RespCodec, [wire], 3)
        assert [r.status for r in replies] == [ST_STORED, ST_ERROR, ST_VALUE]
        assert "unknown command" in replies[1].message
        assert server.error_replies == 1
        assert server.decode_errors == 0

    def test_memcached_bad_magic_closes_connection(self):
        # A wrong magic byte is desync: no reply, connection closed,
        # decode error counted.
        server, replies = serve(make_dpdk_libos_pair, MemcachedCodec,
                                [b"\x42" + b"\x00" * 23], 1)
        assert replies == []
        assert server.decode_errors == 1
        assert server.requests_served == 0

    def test_resp_desync_after_valid_request(self):
        # First request serves, then garbage kills the stream.
        wire = RespCodec().encode_request(Request(op="ping"))
        server, replies = serve(make_dpdk_libos_pair, RespCodec,
                                [wire, b"GARBAGE\r\n"], 2)
        assert [r.status for r in replies] == [ST_PONG]
        assert server.decode_errors == 1


def ttl_client(libos, port=PORT):
    codec = RespCodec()
    qd = yield from libos.socket()
    yield from libos.connect(qd, "10.0.0.2", port)

    def rpc(request):
        wire = codec.encode_request(request)
        yield from libos.blocking_push(qd, libos.sga_alloc(wire))
        while True:
            result = yield from libos.blocking_pop(qd)
            replies = codec.feed_responses(result.sga.tobytes())
            if replies:
                return replies[0]

    stored = yield from rpc(Request(op="set", key=b"k", value=b"v",
                                    ttl_ms=5))
    hit = yield from rpc(Request(op="get", key=b"k"))
    yield libos.sim.timeout(10_000_000)  # 10 ms >> the 5 ms TTL
    expired = yield from rpc(Request(op="get", key=b"k"))
    yield from libos.close(qd)
    return stored, hit, expired


class TestTtlThroughCacheStore:
    def test_resp_px_expiry_against_lru_cache(self):
        w, client, server_libos = make_dpdk_libos_pair()
        cache = LruTtlCache(lambda: server_libos.sim.now)
        server = ProtoServer(server_libos, RespCodec, LruCacheStore(cache),
                             port=PORT)
        sp = w.sim.spawn(server.start(), name="proto-server")
        cp = w.sim.spawn(ttl_client(client))
        w.sim.run_until_complete(cp, limit=10**13)
        server.stop()
        if sp.alive:
            sp.interrupt("test done")
        w.run(until=w.sim.now + 5_000_000)
        stored, hit, expired = cp.value
        assert stored.status == ST_STORED
        assert (hit.status, hit.value) == (ST_VALUE, b"v")
        assert expired.status == ST_MISS
        assert cache.stats.expirations == 1


def shard_client(libos, codec_cls, shard, n_shards, keys, port=SHARD_PORT):
    """Closed-loop SET+GET of shard-owned keys over a steered connection."""
    codec = codec_cls()
    qd = yield from libos.socket()
    sp = src_port_for_queue(libos.ip, "10.0.0.100", shard, n_shards, port)
    yield from libos.connect(qd, "10.0.0.100", port, src_port=sp)

    replies = []
    for key in keys:
        for request in (Request(op="set", key=key, value=b"v:" + key),
                        Request(op="get", key=key)):
            wire = codec.encode_request(request)
            yield from libos.blocking_push(qd, libos.sga_alloc(wire))
            got = []
            while not got:
                result = yield from libos.blocking_pop(qd)
                got = codec.feed_responses(result.sga.tobytes())
            replies.extend(got)
    yield from libos.close(qd)
    return replies


class TestShardedProtoServer:
    @pytest.mark.parametrize("codec_cls", [RespCodec, MemcachedCodec],
                             ids=lambda c: c.name)
    def test_two_shard_cluster_serves_protocol(self, codec_cls):
        n_shards = 2
        w, server, clients = make_sharded_kv_world(
            n_shards, seed=7, port=SHARD_PORT,
            server_cls=ShardProtoServer,
            server_kwargs={"codec_factory": codec_cls})
        server.start()
        # Each client talks only to its own shard with shard-owned keys.
        owned = [[k for k in (b"key-%04d" % j for j in range(64))
                  if key_partition(k, n_shards) == shard][:6]
                 for shard in range(n_shards)]
        procs = [w.sim.spawn(
            shard_client(clients[shard], codec_cls, shard, n_shards,
                         owned[shard]),
            name="shard-client%d" % shard) for shard in range(n_shards)]
        for proc in procs:
            w.sim.run_until_complete(proc, limit=10**13)
        server.stop()
        w.run(until=w.sim.now + 5_000_000)

        for shard, proc in enumerate(procs):
            replies = proc.value
            assert len(replies) == 2 * len(owned[shard])
            for i, key in enumerate(owned[shard]):
                assert replies[2 * i].status == ST_STORED
                assert (replies[2 * i + 1].status,
                        replies[2 * i + 1].value) \
                    == (ST_VALUE, b"v:" + key)
        # The steering contract holds under a real protocol: every
        # request landed on its owner, no shard woke for another's work.
        assert server.misrouted == 0
        assert server.wasted_wakeups == 0
        assert server.cross_wakeups == 0
        assert server.decode_errors == 0
        assert server.requests_served == sum(2 * len(k) for k in owned)
        assert server.qtoken_identity_ok()
