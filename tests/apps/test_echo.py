"""Tests for the echo applications across all four stacks."""

from repro.apps.echo import (
    demi_echo_client,
    demi_echo_server,
    mtcp_echo_client,
    mtcp_echo_server,
    posix_echo_client,
    posix_echo_server,
)

from ..conftest import (
    make_dpdk_libos_pair,
    make_kernel_pair,
    make_mtcp_pair,
    make_posix_libos_pair,
    make_rdma_libos_pair,
)


MESSAGES = [b"alpha", b"bravo", b"charlie"]


class TestDemiEcho:
    def test_dpdk(self):
        w, client, server = make_dpdk_libos_pair()
        sp = w.sim.spawn(demi_echo_server(server, max_requests=3))
        cp = w.sim.spawn(demi_echo_client(client, "10.0.0.2", MESSAGES))
        w.run()
        replies, stats = cp.value
        assert replies == MESSAGES
        assert sp.value == 3
        assert stats.count == 3

    def test_rdma(self):
        w, client, server = make_rdma_libos_pair()
        w.sim.spawn(demi_echo_server(server, max_requests=3))
        cp = w.sim.spawn(demi_echo_client(client, "server-rdma", MESSAGES))
        w.run()
        replies, _ = cp.value
        assert replies == MESSAGES

    def test_posix_libos(self):
        w, client, server = make_posix_libos_pair()
        w.sim.spawn(demi_echo_server(server, max_requests=3))
        cp = w.sim.spawn(demi_echo_client(client, "10.0.0.2", MESSAGES))
        w.run()
        replies, _ = cp.value
        assert replies == MESSAGES

    def test_rtt_stats_are_positive_and_ordered(self):
        w, client, server = make_dpdk_libos_pair()
        w.sim.spawn(demi_echo_server(server, max_requests=10))
        cp = w.sim.spawn(demi_echo_client(client, "10.0.0.2",
                                          [b"m"] * 10))
        w.run()
        _, stats = cp.value
        assert stats.minimum > 0
        assert stats.p50 <= stats.p99 <= stats.maximum


class TestPosixEcho:
    def test_kernel_sockets(self):
        w, ka, kb = make_kernel_pair()
        sp = w.sim.spawn(posix_echo_server(kb, max_requests=3))
        cp = w.sim.spawn(posix_echo_client(ka, "10.0.0.2", MESSAGES))
        w.run()
        replies, _ = cp.value
        assert replies == MESSAGES
        assert sp.value == 3


class TestMtcpEcho:
    def test_mtcp_shim(self):
        w, client, server = make_mtcp_pair()
        sp = w.sim.spawn(mtcp_echo_server(server, max_requests=3))
        cp = w.sim.spawn(mtcp_echo_client(client, "10.0.0.2", MESSAGES))
        w.run()
        replies, _ = cp.value
        assert replies == MESSAGES
        assert sp.value == 3

    def test_mtcp_pays_hops_and_copies(self):
        w, client, server = make_mtcp_pair()
        w.sim.spawn(mtcp_echo_server(server, max_requests=2))
        cp = w.sim.spawn(mtcp_echo_client(client, "10.0.0.2", [b"x" * 1000] * 2))
        w.run()
        assert w.tracer.get("client.mtcp.queue_hops") > 0
        assert w.tracer.get("client.mtcp.bytes_copied_tx") == 2000


class TestTheC5Ordering:
    def test_mtcp_slower_than_kernel_slower_than_demikernel(self):
        """Claim C5: POSIX-preserving user stack loses to the kernel;
        the new abstraction (Demikernel DPDK libOS) beats both."""
        messages = [b"q" * 64] * 10

        w1, ka, kb = make_kernel_pair()
        w1.sim.spawn(posix_echo_server(kb, max_requests=10))
        cp1 = w1.sim.spawn(posix_echo_client(ka, "10.0.0.2", messages))
        w1.run()
        kernel_rtt = cp1.value[1].p50

        w2, ma, mb = make_mtcp_pair()
        w2.sim.spawn(mtcp_echo_server(mb, max_requests=10))
        cp2 = w2.sim.spawn(mtcp_echo_client(ma, "10.0.0.2", messages))
        w2.run()
        mtcp_rtt = cp2.value[1].p50

        w3, da, db = make_dpdk_libos_pair()
        w3.sim.spawn(demi_echo_server(db, max_requests=10))
        cp3 = w3.sim.spawn(demi_echo_client(da, "10.0.0.2", messages))
        w3.run()
        demi_rtt = cp3.value[1].p50

        assert mtcp_rtt > kernel_rtt          # "latency higher than Linux"
        assert demi_rtt * 3 < kernel_rtt      # the gap the paper targets
        assert demi_rtt * 3 < mtcp_rtt


class TestUdpEcho:
    def test_udp_echo_roundtrip(self):
        from repro.apps.echo import demi_udp_echo_client, demi_udp_echo_server
        from ..conftest import make_dpdk_libos_pair
        w, client, server = make_dpdk_libos_pair()
        sp = w.sim.spawn(demi_udp_echo_server(server, max_requests=3))
        cp = w.sim.spawn(demi_udp_echo_client(client, "10.0.0.2", MESSAGES))
        w.sim.run_until_complete(cp, limit=10**13)
        replies, _stats = cp.value
        assert replies == MESSAGES
        assert sp.value == 3

    def test_udp_echo_faster_than_tcp_echo(self):
        """No framing, no handshake state: the datagram path is leaner."""
        from repro.apps.echo import (
            demi_echo_client,
            demi_echo_server,
            demi_udp_echo_client,
            demi_udp_echo_server,
        )
        from ..conftest import make_dpdk_libos_pair

        w1, c1, s1 = make_dpdk_libos_pair()
        w1.sim.spawn(demi_udp_echo_server(s1))
        p1 = w1.sim.spawn(demi_udp_echo_client(c1, "10.0.0.2",
                                               [b"u" * 64] * 10))
        w1.sim.run_until_complete(p1, limit=10**13)
        udp_rtt = p1.value[1].samples[-1]

        w2, c2, s2 = make_dpdk_libos_pair()
        w2.sim.spawn(demi_echo_server(s2))
        p2 = w2.sim.spawn(demi_echo_client(c2, "10.0.0.2",
                                           [b"u" * 64] * 10))
        w2.sim.run_until_complete(p2, limit=10**13)
        tcp_rtt = p2.value[1].samples[-1]
        assert udp_rtt <= tcp_rtt
