"""Smoke tests for the testbed builders (what examples/benches rely on)."""

from repro.testbed import (
    NetHost,
    World,
    make_dpdk_libos_pair,
    make_kernel_pair,
    make_mtcp_pair,
    make_net_pair,
    make_posix_libos_pair,
    make_rdma_libos_pair,
    make_rmem_world,
    make_spdk_libos,
)


class TestWorld:
    def test_hosts_share_fabric_and_tracer(self):
        w = World()
        a = w.add_host("a")
        b = w.add_host("b")
        assert a.tracer is b.tracer is w.tracer
        assert a.mm is not None and b.mm is not None

    def test_add_devices(self):
        w = World()
        host = w.add_host("h")
        nic = w.add_dpdk(host)
        rnic = w.add_rdma(host)
        nvme = w.add_nvme(host)
        assert host.nics == [nic, rnic]
        assert host.nvme is nvme
        # Transparent registration wired both NICs into the manager.
        assert len(host.mm.devices) == 2

    def test_run_returns_time(self):
        w = World()
        w.sim.call_in(500, lambda: None)
        assert w.run() == 500


class TestBuilders:
    def test_kernel_pair_distinct_stacks(self):
        w, ka, kb = make_kernel_pair()
        assert ka.stack.ip != kb.stack.ip
        assert ka.host is not kb.host

    def test_net_pair_hosts_attached(self):
        w, a, b = make_net_pair()
        assert isinstance(a, NetHost) and isinstance(b, NetHost)
        assert a.stack.ip == "10.0.0.1"

    def test_dpdk_pair_offload_flag(self):
        _w, client, server = make_dpdk_libos_pair(with_offload=True)
        assert client.offload_engine is not None
        assert server.offload_engine is not None
        _w2, client2, _server2 = make_dpdk_libos_pair()
        assert client2.offload_engine is None

    def test_posix_pair_shares_kernel_host(self):
        _w, la, lb = make_posix_libos_pair()
        assert la.kernel.host is la.host
        assert lb.kernel.host is lb.host

    def test_rdma_pair_shares_cm(self):
        _w, la, lb = make_rdma_libos_pair()
        assert la.cm is lb.cm

    def test_spdk_libos_has_device(self):
        _w, libos = make_spdk_libos()
        assert libos.nvme is libos.host.nvme

    def test_mtcp_pair_separate_cores(self):
        _w, ca, _cb = make_mtcp_pair()
        assert ca.app_core is not ca.stack_core

    def test_rmem_world_roles(self):
        w, producer, consumer, memnode = make_rmem_world()
        assert memnode.name == "memnode"
        assert producer.ring.base_addr == consumer.ring.base_addr
        # The ring's arena is registered with the memnode's NIC.
        nic = memnode.nics[0]
        nic.iommu.translate(producer.ring.base_addr, 64)
