"""Crash-safe teardown battery: process kills, reclamation, recovery.

Golden-seed scenarios for the crash/recovery subsystem: a process is
killed mid-operation (network stream or storage appends), the kernel
reclaims every resource it held, and surviving peers observe the death
promptly (RST-driven resets, flushed WRs) instead of hanging.  Device
recovery gets the same treatment: a transient NVMe controller failure
is outlasted by the retry ladder, a permanent one surfaces as a typed
:class:`~repro.core.types.DeviceFailed`, and a NIC link flap ends in
re-initialized rings and a relearned ARP entry.

Counters are pinned exactly, as in test_scenarios.py: any change to
teardown ordering or ladder arithmetic shows up as a diff against
known-good numbers.
"""

import pytest

from repro.cli import main
from repro.core.types import DeviceFailed
from repro.testing import check_reproducible, run_scenario


def run_golden(name, kind):
    return run_scenario(name, kind).require_ok()


# ---------------------------------------------------------------------------
# Crash injection + kernel-side reclamation
# ---------------------------------------------------------------------------

def test_golden_crash_mid_stream_dpdk():
    # The client dies with ~48 echoes served; teardown RSTs the live
    # connection and frees its whole registered heap.
    r = run_golden("crash-mid-stream", "dpdk")
    assert r.counter("fault.proc_crashes") == 1
    assert r.counter("client.reclaim.runs") == 1
    assert r.counter("client.reclaim.tcp_rsts") == 1
    assert r.counter("client.reclaim.buffers_freed") == 96
    assert r.counter("client.reclaim.regions_unmapped") == 1
    assert r.data["outcome"] == "connection reset by peer"
    assert 0 < r.data["served"] < 600


def test_golden_crash_mid_stream_posix():
    # Same crash through the kernel path: the fd-table walk aborts the
    # socket and a parked pop qtoken is cancelled.
    r = run_golden("crash-mid-stream", "posix")
    assert r.counter("client.reclaim.fds_closed") == 1
    assert r.counter("client.reclaim.qtokens_cancelled") == 1
    assert r.counter("client.reclaim.tcp_rsts") == 1
    assert r.counter("client.reclaim.buffers_freed") == 147
    assert r.data["outcome"] == "connection reset by peer"


def test_golden_crash_mid_stream_rdma():
    # RC has no RST: teardown destroys the QP (flushing the in-flight
    # WR) and the server's next send exhausts its retries instead.
    r = run_golden("crash-mid-stream", "rdma")
    assert r.counter("client.reclaim.qps_destroyed") == 1
    assert r.counter("client.rdma0.wr_flushes") == 1
    assert r.counter("client.reclaim.buffers_freed") == 131
    assert r.data["outcome"] in ("retry-exceeded", "idle-timeout")


def test_golden_crash_storage():
    # The storage process dies with an NVMe write in flight; reclaim
    # aborts it and the device ends with an empty submission queue.
    r = run_golden("crash-storage", "spdk")
    assert r.counter("fault.proc_crashes") == 1
    assert r.counter("h.reclaim.nvme_aborts") == 1
    assert r.counter("h.nvme0.aborts") == 1
    assert r.counter("h.reclaim.buffers_freed") == 8
    assert r.data["reclaim"]["nvme_aborted"] == 1


# ---------------------------------------------------------------------------
# Device recovery: the NVMe retry ladder and NIC link flaps
# ---------------------------------------------------------------------------

def test_golden_nvme_transient_outage():
    # The 350us controller-failure window eats two attempts; the ladder
    # retries past it and the workload completes without ever escalating
    # to a controller reset.
    r = run_golden("nvme-transient-outage", "spdk")
    assert r.counter("h.nvme0.timeouts") == 2
    assert r.counter("h.nvme0.retries") == 2
    assert r.counter("h.nvme0.ctrl_resets") == 0
    assert r.counter("h.nvme0.device_failures") == 0
    assert r.data["flushed"] > 0


def test_golden_nvme_fatal_outage():
    # A failure outlasting all 3 attempts *and* the controller reset:
    # the post-reset attempt times out too and DeviceFailed surfaces.
    r = run_golden("nvme-fatal-outage", "spdk")
    assert r.counter("h.nvme0.timeouts") == 4
    assert r.counter("h.nvme0.retries") == 3
    assert r.counter("h.nvme0.ctrl_resets") == 1
    assert r.counter("h.nvme0.device_failures") == 1
    assert r.data["failed_op"] == "write"
    assert r.data["attempts"] == 4


def test_device_failed_is_typed():
    err = DeviceFailed("h.nvme0", "write", 4)
    assert err.device == "h.nvme0"
    assert err.op == "write"
    assert err.attempts == 4
    assert "recovery ladder exhausted" in str(err)


def test_golden_link_flap_dpdk():
    # 250us of lost carrier mid-stream: frames die at the dead link,
    # the rings re-initialize on recovery, the stack re-ARPs, and TCP
    # retransmits its way back to a complete echo stream.
    r = run_golden("link-flap", "dpdk")
    assert r.counter("client.dpdk0.link_flaps") == 1
    assert r.counter("client.dpdk0.ring_reinits") == 1
    assert r.counter("client.dpdk0.link_down_drops") == 4
    assert r.counter("client.catnip.stack.arp_relearns") == 1
    assert r.data["served"] == 20


def test_golden_link_flap_posix():
    # The same flap under the kernel NIC: the in-kernel stack relearns
    # its ARP entry and the stream still completes.
    r = run_golden("link-flap", "posix")
    assert r.counter("client.eth0.link_flaps") == 1
    assert r.counter("client.eth0.ring_reinits") == 1
    assert r.counter("client.kstack.arp_relearns") == 1
    assert r.data["served"] == 20


# ---------------------------------------------------------------------------
# Determinism: crashes and ladders replay bit-identically per seed
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name,kind", [
    ("crash-mid-stream", "posix"),
    ("crash-mid-stream", "rdma"),
    ("crash-storage", "spdk"),
    ("nvme-fatal-outage", "spdk"),
    ("link-flap", "dpdk"),
])
def test_same_seed_same_crash_trace(name, kind):
    first, second = check_reproducible(run_scenario, name, kind)
    assert first.counters == second.counters
    assert first.events == second.events


# ---------------------------------------------------------------------------
# The `repro chaos` command
# ---------------------------------------------------------------------------

def test_chaos_cli_runs_a_scenario(capsys):
    rc = main(["chaos", "crash-storage"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "invariants: all held" in out
    assert "signature:" in out


def test_chaos_cli_replays_a_plan_file(tmp_path, capsys):
    from repro.testing import golden_plan

    plan_file = tmp_path / "plan.json"
    plan_file.write_text(golden_plan("nvme-transient-outage", "spdk").to_json())
    rc = main(["chaos", "nvme-transient-outage", "--plan", str(plan_file)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "seed: 909" in out


def test_chaos_cli_rejects_wrong_libos():
    with pytest.raises(SystemExit):
        main(["chaos", "crash-storage", "--libos", "dpdk"])
