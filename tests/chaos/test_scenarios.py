"""The chaos battery: golden-seed fault scenarios with pinned traces.

Each golden test runs one :data:`repro.testing.GOLDEN_SCENARIOS` entry
on its canonical libOS kind and asserts the *exact* fault and recovery
counters the seeded run produces - any change to the fault injector's
decision stream, the fabric's delivery order, or a transport's recovery
behaviour shows up here as a diff against known-good numbers.

The cross-libOS battery then sweeps every scenario across every kind it
supports, checking only the invariants (delivery, qtoken lifecycle,
wake-ups, DMA safety) - behaviour may differ per transport, correctness
may not.
"""

import pytest

from repro.sim.faults import FaultPlan
from repro.testing import (GOLDEN_SCENARIOS, check_reproducible, golden_plan,
                           run_scenario)


def run_golden(name, kind):
    return run_scenario(name, kind).require_ok()


# ---------------------------------------------------------------------------
# Golden scenarios: pinned counters on the canonical kind
# ---------------------------------------------------------------------------

def test_golden_handshake_loss():
    # A total blackout eats the SYN and its first retransmit; the
    # exponential-backoff retry at ~300us escapes the window.
    r = run_golden("handshake-loss", "dpdk")
    assert r.counter("fault.lost_frames") == 3
    assert r.counter("client.catnip.stack.tcp_retransmits") == 2
    assert r.data["served"] == 20


def test_golden_handshake_loss_rdma():
    # The rdmacm rendezvous is off-fabric, so the burst hits the first
    # data exchange instead; go-back-N resends until the window heals.
    r = run_golden("handshake-loss", "rdma")
    assert r.counter("fault.lost_frames") == 4
    assert r.counter("client.rdma0.retransmits") == 4


def test_golden_reorder_dup_storm():
    # Heavy jitter + duplication across the whole KV run: TCP absorbs
    # both with at most a couple of (fast) retransmits.
    r = run_golden("reorder-dup-storm", "dpdk")
    assert r.counter("fault.reordered_frames") == 84
    assert r.counter("fault.duplicated_frames") == 61
    assert r.counter("client.catnip.stack.tcp_fast_retransmits") == 1
    assert r.counter("client.catnip.stack.tcp_retransmits") == 2
    assert r.data["served"] == 40


def test_golden_partition_heal():
    # A 1ms full partition mid-workload: both sides back off and
    # retransmit their way out once it heals.
    r = run_golden("partition-heal", "dpdk")
    assert r.counter("fault.partitioned_frames") == 8
    assert r.counter("client.catnip.stack.tcp_retransmits") == 5
    assert r.counter("server.catnip.stack.tcp_retransmits") == 4
    assert r.data["served"] == 40


def test_golden_rx_ring_overflow():
    # The server NIC's RX ring collapses to zero for 300us: inbound
    # frames die at the ring (not the fabric) and TCP recovers.
    r = run_golden("rx-ring-overflow", "dpdk")
    assert r.counter("server.dpdk0.rx_ring_drops") == 2
    assert r.counter("fault.ring_clamped_checks") == 2
    assert r.counter("client.catnip.stack.tcp_retransmits") == 3
    assert r.counter("fault.lost_frames") == 0  # fabric never dropped


def test_golden_slow_nvme():
    # A 40x slow-flash window: appends crawl through it, everything
    # reads back intact afterwards.
    r = run_golden("slow-nvme", "spdk")
    assert r.counter("fault.slow_ios") == 2
    assert r.counter("h.catfish.file_appends") == 12
    assert r.data["flushed"] > 0


def test_golden_corruption_storm():
    # Random bit flips past the ethernet header: every mangled frame is
    # caught by the IPv4 header checksum (rx_malformed) or the TCP
    # checksum (bad_checksum_drops) - none reach the application.
    r = run_golden("corruption-storm", "dpdk")
    assert r.counter("fault.corrupted_frames") == 12
    caught = (r.counter("client.catnip.stack.tcp_bad_checksum_drops")
              + r.counter("server.catnip.stack.tcp_bad_checksum_drops")
              + r.counter("client.catnip.stack.rx_malformed")
              + r.counter("server.catnip.stack.rx_malformed"))
    assert caught == r.counter("fault.corrupted_frames")
    assert r.data["served"] == 20  # and the echo stream was exact


# ---------------------------------------------------------------------------
# Cross-libOS battery: every scenario on every kind it supports
# ---------------------------------------------------------------------------

BATTERY = [(name, kind)
           for name, spec in GOLDEN_SCENARIOS.items()
           for kind in spec["kinds"]]


@pytest.mark.parametrize("name,kind", BATTERY,
                         ids=["%s-%s" % pair for pair in BATTERY])
def test_battery_invariants(name, kind):
    r = run_golden(name, kind)
    assert r.ok
    # Every scenario actually exercised its faults (except rdma under
    # corruption, where mangled frames drop before reaching a counter
    # we pin here).
    assert any(v for k, v in r.counters.items()
               if k.startswith("fault.")), "plan never fired"


# ---------------------------------------------------------------------------
# Reproducibility: the subsystem's core promise
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name,kind", [
    ("reorder-dup-storm", "dpdk"),
    ("partition-heal", "rdma"),
    ("slow-nvme", "spdk"),
])
def test_same_seed_same_trace(name, kind):
    first, second = check_reproducible(run_scenario, name, kind)
    assert first.signature == second.signature
    assert first.counters == second.counters
    assert first.events == second.events


def test_repro_line_replays_the_run():
    # The printed (seed, plan) alone must reproduce the identical trace:
    # round-trip the plan through its JSON form and re-run.
    original = run_scenario("corruption-storm", "dpdk")
    replayed_plan = FaultPlan.from_json(original.plan.to_json())
    assert replayed_plan == golden_plan("corruption-storm", "dpdk")
    replayed = run_scenario("corruption-storm", "dpdk", plan=replayed_plan)
    assert replayed.signature == original.signature


def test_failures_carry_the_repro_line():
    # An impossible expectation must fail loudly with the replay recipe.
    r = run_scenario("handshake-loss", "dpdk")
    r.failures.append("synthetic violation (test)")
    with pytest.raises(AssertionError) as excinfo:
        r.require_ok()
    message = str(excinfo.value)
    assert "synthetic violation" in message
    assert "seed=%d" % r.plan.seed in message
    assert r.plan.to_json() in message
