"""Tests for the log-structured record store."""

import pytest

from repro.hw.nvme import NvmeDevice
from repro.storage.log import LogError, LogStore

from ..conftest import World


def make_store(**kw):
    w = World()
    host = w.add_host("h")
    nvme = NvmeDevice(host, name="h.nvme0")
    store = LogStore(nvme, host.cpu, **kw)
    return w, store, nvme


def run(w, gen):
    p = w.sim.spawn(gen)
    w.run()
    return p.value


class TestAppendRead:
    def test_append_then_read_from_buffer(self):
        w, store, _ = make_store()

        def proc():
            rid = yield from store.append(b"record-one")
            data = yield from store.read(rid)
            return rid, data

        rid, data = run(w, proc())
        assert rid == 0
        assert data == b"record-one"

    def test_read_after_sync_hits_device(self):
        w, store, nvme = make_store()

        def proc():
            rid = yield from store.append(b"durable-record")
            yield from store.sync()
            data = yield from store.read(rid)
            return data

        assert run(w, proc()) == b"durable-record"
        assert nvme.tracer.get("h.nvme0.writes") >= 1
        assert nvme.tracer.get("h.nvme0.reads") >= 1

    def test_record_ids_are_byte_offsets(self):
        w, store, _ = make_store()

        def proc():
            r1 = yield from store.append(b"aaaa")
            r2 = yield from store.append(b"bb")
            return r1, r2

        r1, r2 = run(w, proc())
        assert r1 == 0
        assert r2 == 12 + 4  # header + payload of the first record

    def test_large_record_spans_blocks(self):
        w, store, _ = make_store()
        payload = bytes(range(256)) * 40  # 10240 bytes

        def proc():
            rid = yield from store.append(payload)
            yield from store.sync()
            return (yield from store.read(rid))

        assert run(w, proc()) == payload

    def test_empty_record_rejected(self):
        w, store, _ = make_store()

        def proc():
            with pytest.raises(LogError):
                yield from store.append(b"")
            return "checked"

        assert run(w, proc()) == "checked"

    def test_bad_record_id_rejected(self):
        w, store, _ = make_store()

        def proc():
            yield from store.append(b"x")
            with pytest.raises(LogError):
                yield from store.read(99999)
            return "checked"

        assert run(w, proc()) == "checked"

    def test_log_full_rejected(self):
        w, store, _ = make_store(lba_count=1)

        def proc():
            yield from store.append(b"y" * 2000)
            with pytest.raises(LogError):
                yield from store.append(b"y" * 3000)
            return "checked"

        assert run(w, proc()) == "checked"

    def test_multiple_syncs_with_partial_blocks(self):
        """A sync mid-block must not corrupt earlier records."""
        w, store, _ = make_store()

        def proc():
            r1 = yield from store.append(b"first")
            yield from store.sync()
            r2 = yield from store.append(b"second")
            yield from store.sync()
            d1 = yield from store.read(r1)
            d2 = yield from store.read(r2)
            return d1, d2

        assert run(w, proc()) == (b"first", b"second")


class TestRecovery:
    def test_mount_rebuilds_tail(self):
        w, store, nvme = make_store()

        def write_phase():
            for i in range(5):
                yield from store.append(b"record-%d" % i)
            yield from store.sync()

        run(w, write_phase())
        # Fresh store object over the same device = restart after crash.
        recovered = LogStore(nvme, store.core)

        def recover_phase():
            found = yield from recovered.mount()
            payloads = []
            for rid in found:
                payloads.append((yield from recovered.read(rid)))
            return found, payloads

        found, payloads = run(w, recover_phase())
        assert len(found) == 5
        assert payloads == [b"record-%d" % i for i in range(5)]
        assert recovered.tail == store.tail

    def test_unsynced_records_lost_on_crash(self):
        w, store, nvme = make_store()

        def write_phase():
            yield from store.append(b"durable")
            yield from store.sync()
            yield from store.append(b"volatile")  # never synced

        run(w, write_phase())
        recovered = LogStore(nvme, store.core)

        def recover_phase():
            return (yield from recovered.mount())

        found = run(w, recover_phase())
        assert len(found) == 1

    def test_corruption_stops_replay(self):
        w, store, nvme = make_store()

        def write_phase():
            for i in range(3):
                yield from store.append(b"record-%d" % i)
            yield from store.sync()

        run(w, write_phase())
        # Corrupt the middle record's payload directly on the device.
        block = bytearray(nvme.peek_block(0))
        block[20] ^= 0xFF
        nvme._blocks[0] = bytes(block)
        recovered = LogStore(nvme, store.core)

        def recover_phase():
            return (yield from recovered.mount())

        found = run(w, recover_phase())
        assert len(found) < 3


class TestSpdkLibOS:
    def test_creat_push_pop(self):
        from ..conftest import make_spdk_libos
        w, libos = make_spdk_libos()

        def proc():
            qd = yield from libos.creat("/log")
            yield from libos.blocking_push(qd, libos.sga_alloc(b"entry-1"))
            yield from libos.blocking_push(qd, libos.sga_alloc(b"entry-2"))
            r1 = yield from libos.blocking_pop(qd)
            r2 = yield from libos.blocking_pop(qd)
            return r1.sga.tobytes(), r2.sga.tobytes()

        assert run(w, proc()) == (b"entry-1", b"entry-2")

    def test_open_reads_existing_records(self):
        from ..conftest import make_spdk_libos
        w, libos = make_spdk_libos()

        def writer():
            qd = yield from libos.creat("/data")
            for i in range(3):
                yield from libos.blocking_push(qd, libos.sga_alloc(b"r%d" % i))
            yield from libos.fsync(qd)

        run(w, writer())

        def reader():
            qd = yield from libos.open("/data")
            out = []
            for _ in range(3):
                result = yield from libos.blocking_pop(qd)
                out.append(result.sga.tobytes())
            return out

        assert run(w, reader()) == [b"r0", b"r1", b"r2"]

    def test_pop_waits_for_append(self):
        from ..conftest import make_spdk_libos
        w, libos = make_spdk_libos()
        order = []

        def reader(qd):
            result = yield from libos.blocking_pop(qd)
            order.append(("read", result.sga.tobytes()))

        def main():
            qd = yield from libos.creat("/tail")
            w.sim.spawn(reader(qd))
            yield w.sim.timeout(1_000_000)
            order.append(("write",))
            yield from libos.blocking_push(qd, libos.sga_alloc(b"fresh"))

        w.sim.spawn(main())
        w.run()
        assert order == [("write",), ("read", b"fresh")]

    def test_open_missing_raises(self):
        from repro.core.types import DemiError
        from ..conftest import make_spdk_libos
        w, libos = make_spdk_libos()

        def proc():
            with pytest.raises(DemiError):
                yield from libos.open("/ghost")
            return "checked"

        assert run(w, proc()) == "checked"

    def test_no_syscalls_on_storage_path(self):
        from ..conftest import make_spdk_libos
        w, libos = make_spdk_libos()

        def proc():
            qd = yield from libos.creat("/fast")
            yield from libos.blocking_push(qd, libos.sga_alloc(b"d" * 4096))
            yield from libos.fsync(qd)
            yield from libos.blocking_pop(qd)

        run(w, proc())
        # No kernel: no syscall or copy counters anywhere.
        assert all("kernel" not in k for k in w.tracer.counters)

    def test_mount_recovers_into_file(self):
        from ..conftest import make_spdk_libos
        w, libos = make_spdk_libos()

        def write_phase():
            qd = yield from libos.creat("/will-crash")
            yield from libos.blocking_push(qd, libos.sga_alloc(b"kept"))
            yield from libos.fsync(qd)

        run(w, write_phase())

        # Simulate restart: a fresh libOS over the same device.
        from repro.libos.spdk_libos import SpdkLibOS
        fresh = SpdkLibOS(libos.host, libos.nvme, name="h.catfish2")

        def recover_phase():
            n = yield from fresh.mount()
            qd = yield from fresh.open("/recovered")
            result = yield from fresh.blocking_pop(qd)
            return n, result.sga.tobytes()

        n, data = run(w, recover_phase())
        assert n == 1
        assert data == b"kept"
