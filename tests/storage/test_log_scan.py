"""Tests for the log store's predicate scans (on-device vs host loop)."""

import pytest

from repro.hw.nvme import NvmeDevice
from repro.storage.log import LogError, LogStore

from ..conftest import World


def make_store(**kw):
    w = World()
    host = w.add_host("h")
    nvme = NvmeDevice(host, name="h.nvme0")
    store = LogStore(nvme, host.cpu, **kw)
    return w, store, nvme


def run(w, gen):
    p = w.sim.spawn(gen)
    w.run()
    return p.value


def fill(store, payloads):
    for payload in payloads:
        yield from store.append(payload)
    yield from store.sync()


class TestScanResults:
    PAYLOADS = [b"apple-1", b"banana-2", b"apple-3", b"cherry-4", b"apple-5"]

    def test_device_and_host_scans_agree(self):
        w, store, _ = make_store()

        def proc():
            yield from fill(store, self.PAYLOADS)
            device = yield from store.scan(
                lambda p: p.startswith(b"apple"))
            host = yield from store.scan_host(
                lambda p: p.startswith(b"apple"))
            return device, host

        device, host = run(w, proc())
        assert device == host
        assert [p for _rid, p in device] == [b"apple-1", b"apple-3",
                                             b"apple-5"]

    def test_record_ids_are_readable_offsets(self):
        w, store, _ = make_store()

        def proc():
            yield from fill(store, self.PAYLOADS)
            matches = yield from store.scan(lambda p: b"cherry" in p)
            rid, payload = matches[0]
            again = yield from store.read(rid)
            return payload, again

        payload, again = run(w, proc())
        assert payload == again == b"cherry-4"

    def test_unflushed_records_invisible_to_device_scan(self):
        w, store, _ = make_store()

        def proc():
            yield from fill(store, [b"flushed"])
            yield from store.append(b"buffered")
            return (yield from store.scan(lambda p: True))

        matches = run(w, proc())
        assert [p for _rid, p in matches] == [b"flushed"]

    def test_empty_log_scans_to_nothing(self):
        w, store, _ = make_store()

        def proc():
            return (yield from store.scan(lambda p: True))

        assert run(w, proc()) == []

    def test_match_counter_recorded(self):
        w, store, nvme = make_store()

        def proc():
            yield from fill(store, self.PAYLOADS)
            yield from store.scan(lambda p: p.startswith(b"apple"))

        run(w, proc())
        assert nvme.tracer.get("h.nvme0.scans") == 1
        assert nvme.tracer.get("h.nvme0.scan_matches") == 3


class TestScanCosts:
    def test_device_scan_charges_almost_no_host_cpu(self):
        w, store, nvme = make_store()
        payloads = [b"record-%03d" % i for i in range(100)]
        cpu = {}

        def proc():
            yield from fill(store, payloads)
            cpu["before"] = store.core.busy_ns
            yield from store.scan(lambda p: False)
            cpu["device"] = store.core.busy_ns - cpu["before"]
            yield from store.scan_host(lambda p: False)
            cpu["host"] = store.core.busy_ns - cpu["before"] - cpu["device"]

        run(w, proc())
        # One submission's worth of CPU vs a per-record charged loop.
        assert cpu["device"] == store.costs.spdk_submit_ns
        assert cpu["host"] > len(payloads) * store.costs.pipeline_element_cpu_ns
        # All the data crossed PCIe on the host path, none on the device
        # path (only the empty match list comes back).
        assert nvme.tracer.get("h.nvme0.reads") >= len(payloads)
        assert nvme.tracer.get("h.nvme0.scans") == 1

    def test_raising_predicate_fails_the_scan(self):
        w, store, nvme = make_store()

        def proc():
            yield from fill(store, [b"x"])
            try:
                yield from store.scan(lambda p: 1 // 0)
            except ZeroDivisionError:
                return "raised"
            return "leaked"

        assert run(w, proc()) == "raised"
        assert nvme.tracer.get("h.nvme0.scan_faults") == 1
