"""Failure paths of rdmacm connection management and stale-QP datapaths.

The replicated tier leans on every one of these: a client connecting to
a crashed node must get a typed error (not hang), a peer whose
``crash_teardown`` destroyed its QPs must surface flush/retry CQEs to
whoever keeps writing, and a reconnect after the peer comes back must
work on fresh QPs.
"""

import pytest

from repro.kernelos.reclaim import crash_teardown
from repro.libos.rdma_libos import RdmaLibOS
from repro.rdma.cm import RdmaCm
from repro.rdma.verbs import VerbsError
from repro.hw.nic import QpError

from ..conftest import World


def make_rdma_world():
    w = World()
    a, b = w.add_host("a"), w.add_host("b")
    nic_a, nic_b = w.add_rdma(a), w.add_rdma(b)
    cm = RdmaCm(w.sim)
    return w, (a, nic_a), (b, nic_b), cm


def connect_pair(w, cm, nic_a, nic_b, port=7000):
    """One established connection: returns (client_qp, server_qp)."""
    listener = cm.listen(nic_b, port)
    out = {}

    def client():
        qp = yield from cm.connect(nic_a, nic_b.addr, port)
        out["client"] = qp

    def server():
        qp = yield from listener.accept()
        out["server"] = qp

    w.sim.spawn(client())
    w.sim.spawn(server())
    w.run()
    listener.close()
    return out["client"], out["server"]


class TestConnectionReject:
    def test_connect_with_no_listener_is_refused(self):
        w, (_a, nic_a), (_b, nic_b), cm = make_rdma_world()

        def client():
            with pytest.raises(VerbsError, match="refused"):
                yield from cm.connect(nic_a, nic_b.addr, 7001)
            return "refused"

        p = w.sim.spawn(client())
        w.run()
        assert p.value == "refused"

    def test_close_rejects_queued_connects_instead_of_stranding(self):
        """A connect whose request was delivered but never accepted must
        fail when the listener closes - the client is parked on the
        *established* event and would otherwise hang forever."""
        w, (_a, nic_a), (_b, nic_b), cm = make_rdma_world()
        listener = cm.listen(nic_b, 7002)

        def client():
            with pytest.raises(VerbsError, match="rejected"):
                yield from cm.connect(nic_a, nic_b.addr, 7002)
            return "rejected"

        p = w.sim.spawn(client())
        # Let the request reach the listener's queue, then slam it shut.
        w.run(until=cm.connect_delay_ns + cm.connect_delay_ns // 2 + 1)
        assert listener._accept_queue, "request should be queued by now"
        listener.close()
        w.run()
        assert p.value == "rejected"

    def test_close_races_in_flight_delivery(self):
        """close() before the request's propagation delay elapses: the
        late-arriving delivery must be rejected, not queued into the
        void."""
        w, (_a, nic_a), (_b, nic_b), cm = make_rdma_world()
        listener = cm.listen(nic_b, 7003)

        def client():
            with pytest.raises(VerbsError, match="rejected"):
                yield from cm.connect(nic_a, nic_b.addr, 7003)
            return "rejected"

        p = w.sim.spawn(client())
        # After the connect's first leg (listener lookup) but before the
        # delivery leg lands on the accept queue.
        w.run(until=cm.connect_delay_ns + 1)
        assert not listener._accept_queue
        listener.close()
        w.run()
        assert p.value == "rejected"

    def test_blocked_accept_wakes_and_raises_on_close(self):
        w, (_a, _nic_a), (_b, nic_b), cm = make_rdma_world()
        listener = cm.listen(nic_b, 7004)

        def server():
            with pytest.raises(VerbsError, match="closed"):
                yield from listener.accept()
            return "woken"

        p = w.sim.spawn(server())
        w.run(until=10_000)
        assert p.alive, "accept should be parked"
        listener.close()
        w.run()
        assert p.value == "woken"

    def test_accept_on_closed_listener_raises_immediately(self):
        w, (_a, _nic_a), (_b, nic_b), cm = make_rdma_world()
        listener = cm.listen(nic_b, 7005)
        listener.close()

        def server():
            with pytest.raises(VerbsError, match="closed"):
                yield from listener.accept()
            return "raised"

        p = w.sim.spawn(server())
        w.run()
        assert p.value == "raised"

    def test_close_frees_the_port_for_a_new_listener(self):
        w, (_a, _nic_a), (_b, nic_b), cm = make_rdma_world()
        listener = cm.listen(nic_b, 7006)
        listener.close()
        again = cm.listen(nic_b, 7006)  # no VerbsError: the key is free
        assert again is not listener


class TestStaleQp:
    def test_writes_to_destroyed_peer_surface_retry_exhaustion(self):
        """The peer tore its QP down (crash path): our one-sided writes
        must complete with an error CQE after retry exhaustion, never
        hang."""
        w, (a, nic_a), (_b, nic_b), cm = make_rdma_world()
        client_qp, server_qp = connect_pair(w, cm, nic_a, nic_b)
        target = a.mm.alloc(64)  # any registered remote address
        server_qp.destroy()

        def writer():
            wr = client_qp.post_write(b"x" * 32, target.addr)
            cqe = yield from client_qp.wait_send_completion()
            return wr, cqe

        p = w.sim.spawn(writer())
        w.run()
        wr, cqe = p.value
        assert cqe["wr_id"] == wr
        assert cqe["status"] != "ok"

    def test_post_on_locally_destroyed_qp_raises_typed(self):
        w, (_a, nic_a), (_b, nic_b), cm = make_rdma_world()
        client_qp, _server_qp = connect_pair(w, cm, nic_a, nic_b, port=7007)
        client_qp.destroy()
        with pytest.raises(QpError):
            client_qp.post_send(b"too late")

    def test_inflight_wrs_flush_on_local_destroy(self):
        """destroy() with sends queued: each posted WR must come back as
        a flush CQE so waiters drain instead of hanging."""
        w, (a, nic_a), (_b, nic_b), cm = make_rdma_world()
        client_qp, _server_qp = connect_pair(w, cm, nic_a, nic_b, port=7008)
        target = a.mm.alloc(64)
        statuses = []
        # Post while the QP is healthy, destroy with both WRs in flight.
        client_qp.post_write(b"y" * 16, target.addr)
        client_qp.post_write(b"z" * 16, target.addr)
        client_qp.destroy()

        def waiter():
            for _ in range(2):
                cqe = yield from client_qp.wait_send_completion()
                statuses.append(cqe["status"])

        p = w.sim.spawn(waiter())
        w.run()
        assert not p.alive
        assert len(statuses) == 2
        assert all(s != "ok" for s in statuses)


class TestReconnectAfterCrash:
    def test_reconnect_after_peer_crash_teardown(self):
        """Full cycle: connect via the libOS, crash the server host (its
        teardown destroys QPs and closes the listener), then the server
        side comes back with a fresh listener and the client reconnects
        on fresh QPs."""
        w = World()
        ch, sh = w.add_host("client"), w.add_host("server")
        cnic, snic = w.add_rdma(ch), w.add_rdma(sh)
        cm = RdmaCm(w.sim)
        client = RdmaLibOS(ch, cnic, cm, name="client.catmint")
        server = RdmaLibOS(sh, snic, cm, name="server.catmint")
        log = []

        def server_once():
            qd = yield from server.socket()
            yield from server.bind(qd, 9000)
            yield from server.listen(qd)
            conn = yield from server.accept(qd)
            result = yield from server.blocking_pop(conn)
            log.append(bytes(result.sga.tobytes()))
            # Crash before replying: the client's pending pop must not
            # strand once our QPs die.

        def client_flow():
            qd = yield from client.socket()
            yield from client.connect(qd, snic.addr, 9000)
            yield from client.blocking_push(qd, client.sga_alloc(b"one"))
            yield w.sim.timeout(50_000)
            # -- the server process dies; the kernel reclaims ------------
            yield from crash_teardown(server, None)
            yield from client.close(qd)
            # -- the service restarts on the same port -------------------
            server2 = RdmaLibOS(sh, snic, cm, name="server2.catmint")

            def echo_once():
                lqd = yield from server2.socket()
                yield from server2.bind(lqd, 9000)
                yield from server2.listen(lqd)
                conn = yield from server2.accept(lqd)
                result = yield from server2.blocking_pop(conn)
                yield from server2.blocking_push(conn, result.sga)

            w.sim.spawn(echo_once())
            qd2 = yield from client.socket()
            yield from client.connect(qd2, snic.addr, 9000)
            yield from client.blocking_push(qd2, client.sga_alloc(b"two"))
            result = yield from client.blocking_pop(qd2)
            log.append(bytes(result.sga.tobytes()))
            yield from client.close(qd2)
            return "done"

        w.sim.spawn(server_once())
        p = w.sim.spawn(client_flow())
        w.run(until=3_000_000_000)
        assert p.value == "done"
        assert log == [b"one", b"two"]
        # The crashed server instance kept no queue descriptors.
        assert not server._queues
