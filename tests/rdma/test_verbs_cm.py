"""Tests for the verbs layer and rdmacm-style connection management."""

import pytest

from repro.rdma.cm import RdmaCm
from repro.rdma.verbs import ProtectionDomain, QueuePair, VerbsError

from ..conftest import World


def make_rdma_world():
    w = World()
    a, b = w.add_host("a"), w.add_host("b")
    nic_a, nic_b = w.add_rdma(a), w.add_rdma(b)
    cm = RdmaCm(w.sim)
    return w, (a, nic_a), (b, nic_b), cm


class TestVerbs:
    def test_qp_send_recv_through_wrappers(self):
        w, (a, nic_a), (b, nic_b), _cm = make_rdma_world()
        pd_a, pd_b = ProtectionDomain(nic_a), ProtectionDomain(nic_b)
        qp_a, qp_b = QueuePair(pd_a), QueuePair(pd_b)
        qp_a.connect(nic_b.addr, qp_b.qpn)
        qp_b.connect(nic_a.addr, qp_a.qpn)
        buf = b.mm.alloc(128)
        qp_b.post_recv(buf)

        def receiver():
            cqe = yield from qp_b.wait_recv_completion()
            return cqe

        def sender():
            qp_a.post_send(b"verbs message")
            cqe = yield from qp_a.wait_send_completion()
            return cqe

        rp = w.sim.spawn(receiver())
        sp = w.sim.spawn(sender())
        w.run()
        assert rp.value["status"] == "ok"
        assert sp.value["status"] == "ok"
        assert buf.read(0, 13) == b"verbs message"

    def test_explicit_mr_registration_on_unregistered_memory(self):
        w, (a, nic_a), _, _cm = make_rdma_world()
        a.mm.transparent = False
        from repro.memory.buffer import Buffer
        raw = Buffer(0x5000_0000, 4096)  # not from the managed heap
        pd = ProtectionDomain(nic_a)
        before = w.tracer.get("a.rdma0.explicit_mr_registrations")
        mr = pd.reg_mr(raw)
        assert w.tracer.get("a.rdma0.explicit_mr_registrations") == before + 1
        nic_a.iommu.translate(raw.addr, 4096)
        mr.dereg()
        from repro.hw.iommu import IommuFault
        with pytest.raises(IommuFault):
            nic_a.iommu.translate(raw.addr, 4096)

    def test_mr_on_transparent_region_skips_remap(self):
        w, (a, nic_a), _, _cm = make_rdma_world()
        buf = a.mm.alloc(256)  # transparent registration covers it
        pd = ProtectionDomain(nic_a)
        mr = pd.reg_mr(buf)
        assert mr._handle is None
        assert w.tracer.get("a.rdma0.explicit_mr_registrations") == 0


class TestCm:
    def test_connect_accept_exchange_qps(self):
        w, (a, nic_a), (b, nic_b), cm = make_rdma_world()
        listener = cm.listen(nic_b, 7)

        def server():
            qp = yield from listener.accept()
            return qp

        def client():
            qp = yield from cm.connect(nic_a, nic_b.addr, 7)
            return qp

        sp = w.sim.spawn(server())
        cp = w.sim.spawn(client())
        w.run()
        assert cp.value.hw.remote_qpn == sp.value.qpn
        assert sp.value.hw.remote_qpn == cp.value.qpn

    def test_connect_completes_after_accept(self):
        """rdmacm semantics: the client returns only once the server
        accepted - so server-side recv buffers posted right after accept
        are guaranteed to beat the client's first send."""
        w, (a, nic_a), (b, nic_b), cm = make_rdma_world()
        listener = cm.listen(nic_b, 7)
        times = {}

        def server():
            yield w.sim.timeout(200_000)  # accept late
            qp = yield from listener.accept()
            times["accepted"] = w.sim.now
            return qp

        def client():
            yield from cm.connect(nic_a, nic_b.addr, 7)
            times["connected"] = w.sim.now

        w.sim.spawn(server())
        w.sim.spawn(client())
        w.run()
        assert times["connected"] > times["accepted"]

    def test_connect_refused_without_listener(self):
        w, (a, nic_a), (b, nic_b), cm = make_rdma_world()

        def client():
            with pytest.raises(VerbsError):
                yield from cm.connect(nic_a, nic_b.addr, 99)
            return "checked"

        cp = w.sim.spawn(client())
        w.run()
        assert cp.value == "checked"

    def test_duplicate_listen_rejected(self):
        w, _, (b, nic_b), cm = make_rdma_world()
        cm.listen(nic_b, 7)
        with pytest.raises(VerbsError):
            cm.listen(nic_b, 7)

    def test_connect_charges_control_path_delay(self):
        w, (a, nic_a), (b, nic_b), cm = make_rdma_world()
        listener = cm.listen(nic_b, 7)

        def server():
            yield from listener.accept()

        def client():
            start = w.sim.now
            yield from cm.connect(nic_a, nic_b.addr, 7)
            return w.sim.now - start

        w.sim.spawn(server())
        cp = w.sim.spawn(client())
        w.run()
        assert cp.value >= cm.connect_delay_ns
