"""Tests for the libevent-style DemiEventLoop (section 4.4 future work)."""

import pytest

from repro.core.api import LibOS
from repro.core.eventloop import DemiEventLoop

from ..conftest import World, make_dpdk_libos_pair


def make_loop():
    w = World()
    host = w.add_host("h")
    libos = LibOS(host, "demi")
    loop = DemiEventLoop(libos)
    w.sim.spawn(loop.run(), name="eventloop")
    return w, libos, loop


class TestPopEvents:
    def test_callback_receives_element(self):
        w, libos, loop = make_loop()
        qd = libos.queue()
        got = []
        loop.add_pop_event(qd, lambda result: got.append(result.sga.tobytes()))
        w.sim.call_in(1000, lambda: libos.push(qd, libos.sga_alloc(b"ev-1")))
        w.run(until=1_000_000)
        loop.stop()
        assert got == [b"ev-1"]

    def test_persistent_event_fires_repeatedly(self):
        w, libos, loop = make_loop()
        qd = libos.queue()
        got = []
        loop.add_pop_event(qd, lambda r: got.append(r.sga.tobytes()),
                           persistent=True)

        def producer():
            for i in range(5):
                yield from libos.blocking_push(qd, libos.sga_alloc(b"%d" % i))
                yield w.sim.timeout(10_000)

        w.sim.spawn(producer())
        w.run(until=1_000_000)
        loop.stop()
        assert got == [b"0", b"1", b"2", b"3", b"4"]
        assert loop.dispatches == 5

    def test_oneshot_event_fires_once(self):
        w, libos, loop = make_loop()
        qd = libos.queue()
        got = []
        loop.add_pop_event(qd, lambda r: got.append(r.sga.tobytes()),
                           persistent=False)

        def producer():
            for i in range(3):
                yield from libos.blocking_push(qd, libos.sga_alloc(b"%d" % i))
                yield w.sim.timeout(10_000)

        w.sim.spawn(producer())
        w.run(until=1_000_000)
        loop.stop()
        assert got == [b"0"]

    def test_two_queues_dispatch_independently(self):
        w, libos, loop = make_loop()
        q1, q2 = libos.queue(), libos.queue()
        got = []
        loop.add_pop_event(q1, lambda r: got.append(("q1", r.sga.tobytes())))
        loop.add_pop_event(q2, lambda r: got.append(("q2", r.sga.tobytes())))
        w.sim.call_in(1000, lambda: libos.push(q2, libos.sga_alloc(b"b")))
        w.sim.call_in(2000, lambda: libos.push(q1, libos.sga_alloc(b"a")))
        w.run(until=1_000_000)
        loop.stop()
        assert got == [("q2", b"b"), ("q1", b"a")]

    def test_generator_callback_is_driven(self):
        w, libos, loop = make_loop()
        qd = libos.queue()
        out_qd = libos.queue()

        def responder(result):
            # A sim-coroutine callback: push a transformed reply.
            yield from libos.blocking_push(
                out_qd, libos.sga_alloc(result.sga.tobytes().upper()))

        loop.add_pop_event(qd, responder)
        w.sim.call_in(100, lambda: libos.push(qd, libos.sga_alloc(b"shout")))

        def collector():
            result = yield from libos.blocking_pop(out_qd)
            return result.sga.tobytes()

        cp = w.sim.spawn(collector())
        w.run(until=1_000_000)
        loop.stop()
        assert cp.value == b"SHOUT"

    def test_remove_stops_dispatch(self):
        w, libos, loop = make_loop()
        qd = libos.queue()
        got = []
        handle = loop.add_pop_event(qd, lambda r: got.append(1))
        loop.remove(handle)
        w.sim.call_in(1000, lambda: libos.push(qd, libos.sga_alloc(b"x")))
        w.run(until=1_000_000)
        loop.stop()
        assert got == []


class TestTimers:
    def test_oneshot_timer(self):
        w, libos, loop = make_loop()
        fired = []
        loop.add_timer(50_000, lambda: fired.append(w.sim.now))
        w.run(until=1_000_000)
        loop.stop()
        assert len(fired) == 1
        assert fired[0] >= 50_000

    def test_periodic_timer(self):
        w, libos, loop = make_loop()
        fired = []
        loop.add_timer(100_000, lambda: fired.append(w.sim.now),
                       periodic=True)
        w.run(until=1_000_000)
        loop.stop()
        assert len(fired) >= 8

    def test_timer_and_pop_interleave(self):
        w, libos, loop = make_loop()
        qd = libos.queue()
        got = []
        loop.add_timer(30_000, lambda: got.append("timer"), periodic=True)
        loop.add_pop_event(qd, lambda r: got.append("pop"))
        w.sim.call_in(50_000, lambda: libos.push(qd, libos.sga_alloc(b"x")))
        w.run(until=100_000)
        loop.stop()
        assert "timer" in got and "pop" in got

    def test_nonpositive_delay_rejected(self):
        _w, _libos, loop = make_loop()
        with pytest.raises(ValueError):
            loop.add_timer(0, lambda: None)

    def test_remove_timer(self):
        w, libos, loop = make_loop()
        fired = []
        handle = loop.add_timer(50_000, lambda: fired.append(1),
                                periodic=True)
        w.run(until=120_000)
        loop.remove(handle)
        count = len(fired)
        w.run(until=500_000)
        loop.stop()
        assert len(fired) == count


class TestOverNetwork:
    def test_event_loop_serves_network_queue(self):
        """The memcached scenario: callback server over a real connection."""
        w, client, server = make_dpdk_libos_pair()
        loop = DemiEventLoop(server)
        served = []

        def server_main():
            lqd = yield from server.socket()
            yield from server.bind(lqd, 7)
            yield from server.listen(lqd)
            qd = yield from server.accept(lqd)

            def on_request(result):
                if result.error is not None:
                    loop.stop()
                    return
                served.append(result.sga.tobytes())
                yield from server.blocking_push(qd, result.sga)

            loop.add_pop_event(qd, on_request)
            w.sim.spawn(loop.run(), name="srv-loop")

        from repro.apps.echo import demi_echo_client
        w.sim.spawn(server_main())
        cp = w.sim.spawn(demi_echo_client(client, "10.0.0.2",
                                          [b"m1", b"m2", b"m3"]))
        w.sim.run_until_complete(cp, limit=10**12)
        loop.stop()
        replies, _ = cp.value
        assert replies == [b"m1", b"m2", b"m3"]
        assert served == [b"m1", b"m2", b"m3"]
