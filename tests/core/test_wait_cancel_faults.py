"""qtoken cancellation under device stalls (paper section 4.4 hardening).

A qtoken bound to an operation on a stalled device must be abandonable:
``cancel`` retires it immediately, the device's eventual completion is
dropped on the floor (it can never wake a waiter), and the lifecycle
identity ``created == completed + cancelled + in_flight`` survives all
of it.
"""

import pytest

from repro.core.types import DemiError
from repro.sim.faults import FaultPlan
from repro.testbed import make_spdk_libos

US = 1_000
MS = 1_000_000


def qt_identity(libos):
    qt = libos.qtokens
    return qt.created == qt.completed + qt.cancelled + qt.in_flight


# ---------------------------------------------------------------------------
# Pure table semantics (no device)
# ---------------------------------------------------------------------------

def test_cancel_pending_pop_retires_token():
    world, libos = make_spdk_libos()
    qd = libos.queue()
    token = libos.pop(qd)
    assert libos.qtokens.in_flight == 1
    libos.cancel(token)
    assert libos.qtokens.in_flight == 0
    assert libos.qtokens.cancelled == 1
    assert libos.qtokens.completed == 0
    assert qt_identity(libos)
    assert world.tracer.get("%s.qtokens_cancelled" % libos.name) == 1
    assert world.tracer.get("%s.cancels" % libos.name) == 1


def test_cancelled_pop_does_not_lose_data():
    world, libos = make_spdk_libos()
    qd = libos.queue()
    token = libos.pop(qd)
    libos.cancel(token)
    queue = libos.queue_of(qd)
    assert queue.pending_pop_count == 0  # on_cancel unregistered the pop
    # The element arrives after the cancel: it must buffer, not chase
    # the dead token.
    queue.deliver(libos.sga_alloc(b"survives"))
    assert queue.ready_elements == 1

    def reader():
        result = yield from libos.blocking_pop(qd)
        return result.sga.tobytes()

    proc = world.sim.spawn(reader(), name="reader")
    assert world.sim.run_until_complete(proc, limit=10 * MS) == b"survives"
    assert qt_identity(libos)
    assert libos.qtokens.in_flight == 0


def test_cancel_unknown_token_raises():
    world, libos = make_spdk_libos()
    with pytest.raises(DemiError):
        libos.cancel(99999)


def test_cancel_completed_token_raises():
    world, libos = make_spdk_libos()
    qd = libos.queue()
    queue = libos.queue_of(qd)
    queue.deliver(libos.sga_alloc(b"x"))
    token = libos.pop(qd)  # completes immediately: data was ready
    with pytest.raises(DemiError):
        libos.cancel(token)


def test_double_cancel_raises():
    world, libos = make_spdk_libos()
    qd = libos.queue()
    token = libos.pop(qd)
    libos.cancel(token)
    with pytest.raises(DemiError):
        libos.cancel(token)


# ---------------------------------------------------------------------------
# Cancellation against a genuinely stalled device
# ---------------------------------------------------------------------------

def build_stalled_nvme(factor=1000.0):
    """An SPDK libOS whose flash goes ~1000x slow after setup time."""
    plan = FaultPlan(seed=5).nvme_slow("nvme0", 200 * US, 10_000 * MS,
                                       factor=factor)
    world, libos = make_spdk_libos(seed=5)
    world.install_faults(plan)
    return world, libos


def test_cancel_stalled_read_drops_late_completion():
    world, libos = build_stalled_nvme()
    sim = world.sim
    outcome = {}

    def body():
        qd = yield from libos.creat("/f")
        for data in (b"a" * 100, b"b" * 100):
            yield from libos.blocking_push(qd, libos.sga_alloc(data))
        # Flush so later reads do real flash I/O (buffered records would
        # be served from memory, untouched by the device stall).
        yield from libos.fsync(qd)
        qd2 = yield from libos.open("/f")
        # Enter the slow-device window, then start a read that will
        # take tens of milliseconds.
        yield sim.timeout(300 * US - sim.now)
        stalled = libos.pop(qd2)
        yield sim.timeout(10 * US)
        assert libos.qtokens.in_flight == 1  # the device is sitting on it
        libos.cancel(stalled)
        assert libos.qtokens.in_flight == 0  # retired immediately
        # A second pop reads the next record; its waiter must be the
        # only thing the (eventually arriving) completions can touch.
        result = yield from libos.blocking_pop(qd2)
        outcome["data"] = result.sga.tobytes()

    proc = sim.spawn(body(), name="canceller")
    sim.run_until_complete(proc, limit=60_000 * MS)
    world.run()  # drain: the stalled read completes long after the cancel
    assert outcome["data"] == b"b" * 100
    # The late completion was dropped, not delivered and not fatal.
    assert world.tracer.get("%s.late_completions_dropped" % libos.name) == 1
    assert libos.qtokens.cancelled == 1
    assert libos.qtokens.in_flight == 0
    assert qt_identity(libos)


def test_stalled_cancel_never_wakes_a_waiter():
    # No wake-ups without work: every wait return is backed by a
    # completed operation even when cancels and late completions fly.
    world, libos = build_stalled_nvme()
    sim = world.sim

    def body():
        qd = yield from libos.creat("/f")
        yield from libos.blocking_push(qd, libos.sga_alloc(b"z" * 64))
        yield from libos.fsync(qd)  # flush: reads must hit the flash
        qd2 = yield from libos.open("/f")
        yield sim.timeout(300 * US - sim.now)
        stalled = libos.pop(qd2)
        yield sim.timeout(US)
        libos.cancel(stalled)
        # Nothing else outstanding: if the cancelled op could wake a
        # waiter, this timeout-only sleep would be where it shows up.
        yield sim.timeout(200_000 * US)

    proc = sim.spawn(body(), name="sleeper")
    sim.run_until_complete(proc, limit=10**12)
    world.run()
    waits = world.tracer.get("%s.waits" % libos.name)
    completed = world.tracer.get("%s.qtokens_completed" % libos.name)
    assert waits <= completed
    assert world.tracer.get("%s.late_completions_dropped" % libos.name) == 1
    assert qt_identity(libos)


def test_accounting_identity_with_mixed_outcomes():
    world, libos = make_spdk_libos()
    qd = libos.queue()
    queue = libos.queue_of(qd)
    # 2 completed (data ready), 2 cancelled, 1 left in flight.
    queue.deliver(libos.sga_alloc(b"1"))
    queue.deliver(libos.sga_alloc(b"2"))
    t_done = [libos.pop(qd), libos.pop(qd)]
    t_cancel = [libos.pop(qd), libos.pop(qd)]
    t_flight = libos.pop(qd)
    for token in t_cancel:
        libos.cancel(token)
    qt = libos.qtokens
    assert (qt.created, qt.completed, qt.cancelled, qt.in_flight) == (5, 2, 2, 1)
    assert qt_identity(libos)
