"""Tests for sga types and the qtoken wait scheduler."""

import pytest

from repro.core.types import DemiError, DemiTimeout, Sga, SgaSegment
from repro.core.wait import QTokenTable
from repro.core.types import OP_POP, QResult
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

from ..conftest import World


class TestSga:
    def _mm(self):
        w = World()
        return w.add_host("h").mm

    def test_from_bytes_roundtrip(self):
        mm = self._mm()
        sga = Sga.from_bytes(mm, b"atomic data unit")
        assert sga.tobytes() == b"atomic data unit"
        assert sga.nbytes == 16
        assert sga.nsegments == 1

    def test_empty_bytes_rejected(self):
        mm = self._mm()
        with pytest.raises(DemiError):
            Sga.from_bytes(mm, b"")

    def test_multi_segment_gather(self):
        mm = self._mm()
        a = mm.alloc(8).fill(b"01234567")
        b = mm.alloc(8).fill(b"abcdefgh")
        sga = Sga([SgaSegment(a, 2, 4), SgaSegment(b, 0, 3)])
        assert sga.tobytes() == b"2345abc"
        assert sga.nbytes == 7
        assert sga.nsegments == 2

    def test_segment_bounds_checked(self):
        mm = self._mm()
        buf = mm.alloc(8)
        with pytest.raises(DemiError):
            SgaSegment(buf, 4, 8)

    def test_dma_ranges_follow_offsets(self):
        mm = self._mm()
        buf = mm.alloc(64)
        sga = Sga([SgaSegment(buf, 16, 8)])
        assert sga.dma_ranges() == [(buf.addr + 16, 8)]

    def test_hold_release_tracks_device_refs(self):
        mm = self._mm()
        buf = mm.alloc(16)
        sga = Sga.from_buffer(buf)
        sga.hold_all()
        assert buf.device_refs == 1
        sga.release_all()
        assert buf.device_refs == 0


class TestQTokenTable:
    def make(self):
        sim = Simulator()
        return sim, QTokenTable(sim, Tracer(), "t")

    def test_tokens_are_unique(self):
        _sim, table = self.make()
        t1, _ = table.create()
        t2, _ = table.create()
        assert t1 != t2

    def test_wait_returns_result(self):
        sim, table = self.make()
        token, _ = table.create()

        def waiter():
            result = yield from table.wait(token)
            return result

        p = sim.spawn(waiter())
        sim.call_in(100, table.complete, token,
                    QResult(OP_POP, 1, nbytes=5))
        sim.run()
        assert p.value.nbytes == 5
        assert table.outstanding == 0

    def test_wait_unknown_token_raises(self):
        _sim, table = self.make()
        with pytest.raises(DemiError):
            table.completion_of(999)

    def test_complete_unknown_token_raises(self):
        _sim, table = self.make()
        with pytest.raises(DemiError):
            table.complete(42, QResult(OP_POP, 1))

    def test_wait_any_returns_first(self):
        sim, table = self.make()
        t1, _ = table.create()
        t2, _ = table.create()

        def waiter():
            index, result = yield from table.wait_any([t1, t2])
            return index, result.nbytes

        p = sim.spawn(waiter())
        sim.call_in(50, table.complete, t2, QResult(OP_POP, 1, nbytes=2))
        sim.call_in(500, table.complete, t1, QResult(OP_POP, 1, nbytes=1))
        sim.run()
        assert p.value == (1, 2)
        # t1 is still outstanding (completed later, never waited).
        assert table.outstanding == 0 or table.outstanding == 1

    def test_wait_any_timeout(self):
        sim, table = self.make()
        token, _ = table.create()

        def waiter():
            try:
                yield from table.wait_any([token], timeout_ns=1000)
            except DemiTimeout as err:
                return err

        p = sim.spawn(waiter())
        sim.run()
        assert isinstance(p.value, DemiTimeout)
        assert p.value.timeout_ns == 1000
        assert p.value.tokens == (token,)
        # The token survives a timeout and can be waited again.
        assert table.outstanding == 1

    def test_wait_any_empty_rejected(self):
        sim, table = self.make()

        def waiter():
            yield from table.wait_any([])

        p = sim.spawn(waiter())
        with pytest.raises(DemiError):
            sim.run()

    def test_wait_all_collects_every_result(self):
        sim, table = self.make()
        tokens = []
        for i in range(3):
            t, _ = table.create()
            tokens.append(t)

        def waiter():
            results = yield from table.wait_all(tokens)
            return [r.nbytes for r in results]

        p = sim.spawn(waiter())
        # Complete out of order.
        sim.call_in(30, table.complete, tokens[2], QResult(OP_POP, 1, nbytes=2))
        sim.call_in(10, table.complete, tokens[0], QResult(OP_POP, 1, nbytes=0))
        sim.call_in(20, table.complete, tokens[1], QResult(OP_POP, 1, nbytes=1))
        sim.run()
        assert p.value == [0, 1, 2]

    def test_wait_all_timeout_raises(self):
        sim, table = self.make()
        t1, _ = table.create()
        t2, _ = table.create()

        def waiter():
            try:
                yield from table.wait_all([t1, t2], timeout_ns=1000)
            except DemiTimeout as err:
                return err

        p = sim.spawn(waiter())
        sim.call_in(100, table.complete, t1, QResult(OP_POP, 1))
        sim.run()
        assert isinstance(p.value, DemiTimeout)
        assert p.value.timeout_ns == 1000

    def test_wait_all_empty_is_instant(self):
        sim, table = self.make()

        def waiter():
            return (yield from table.wait_all([]))

        p = sim.spawn(waiter())
        sim.run()
        assert p.value == []

    def test_exactly_one_waiter_per_completion(self):
        """Two waiters on two distinct tokens: one completion wakes one."""
        sim, table = self.make()
        t1, _ = table.create()
        t2, _ = table.create()
        woken = []

        def waiter(name, token):
            yield from table.wait(token)
            woken.append((name, sim.now))

        sim.spawn(waiter("a", t1))
        sim.spawn(waiter("b", t2))
        sim.call_in(100, table.complete, t1, QResult(OP_POP, 1))
        sim.run(until=10_000)
        assert [w[0] for w in woken] == ["a"]  # b still asleep
