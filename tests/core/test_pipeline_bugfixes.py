"""Regression tests for the pipeline fixes shipped with the offload work.

Three historical bugs:

* ``SortedQueue.deliver`` re-ran ``self.key(sga)`` uncharged after the
  runner had already charged one execution - the key function ran twice
  per element and only one run was accounted;
* ``_DerivedQueue._pump`` broke out of its loop silently when the source
  pop returned an error, leaving every pending and subsequent pop on the
  derived queue hung forever;
* an element function raising inside the pump (or the push driver)
  killed the pump process and leaked the in-flight tokens.
"""

from repro.core.api import LibOS
from repro.hw.offload import OffloadEngine

from ..conftest import World


def make_libos(with_offload=False):
    w = World()
    host = w.add_host("h", cores=4)
    libos = LibOS(host, "demi")
    if with_offload:
        libos.offload_engine = OffloadEngine(host)
    return w, libos


def run(w, gen, limit=10**12):
    p = w.sim.spawn(gen)
    w.sim.run_until_complete(p, limit=limit)
    return p.value


def assert_no_hung_tokens(libos):
    qt = libos.qtokens
    assert qt.in_flight == 0
    assert qt.created == qt.completed + qt.cancelled + qt.in_flight


class TestSortKeyRunsOnce:
    def test_key_called_exactly_once_per_element(self):
        w, libos = make_libos()
        src = libos.queue()
        calls = []

        def key(sga):
            calls.append(sga.tobytes())
            return sga.tobytes()

        srt = libos.sort(src, key)

        def proc():
            for data in (b"c", b"a", b"b"):
                yield from libos.blocking_push(src, libos.sga_alloc(data))
            out = []
            for _ in range(3):
                result = yield from libos.blocking_pop(srt)
                out.append(result.sga.tobytes())
            return out

        assert run(w, proc()) == [b"a", b"b", b"c"]
        # One execution per element - and the same count is charged.
        assert sorted(calls) == [b"a", b"b", b"c"]
        assert w.tracer.get("demi.pipeline.sort_cpu_elements") == 3

    def test_key_charged_on_device_when_offloaded(self):
        w, libos = make_libos(with_offload=True)
        src = libos.queue()
        calls = []

        def key(sga):
            calls.append(1)
            return sga.tobytes()

        srt = libos.sort(src, key)

        def proc():
            for data in (b"2", b"1"):
                yield from libos.blocking_push(src, libos.sga_alloc(data))
            out = []
            for _ in range(2):
                result = yield from libos.blocking_pop(srt)
                out.append(result.sga.tobytes())
            return out

        assert run(w, proc()) == [b"1", b"2"]
        assert len(calls) == 2
        assert w.tracer.get("demi.pipeline.sort_device_elements") == 2
        # Device executions reconcile with the engine's own ledger.
        assert w.tracer.get("offload0.offloaded_sort") == 2


class TestSourceErrorPropagation:
    def test_source_close_drains_to_eof_not_hang(self):
        w, libos = make_libos()
        src = libos.queue()
        flt = libos.filter(src, lambda sga: True)

        def proc():
            yield from libos.blocking_push(src, libos.sga_alloc(b"x"))
            first = yield from libos.blocking_pop(flt)
            yield from libos.close(src)
            second = yield from libos.blocking_pop(flt)
            return first.error, second.error

        assert run(w, proc()) == (None, "eof")
        assert_no_hung_tokens(libos)

    def test_sorted_queue_pops_after_eof_error_out(self):
        w, libos = make_libos()
        src = libos.queue()
        srt = libos.sort(src, lambda sga: sga.tobytes())

        def proc():
            yield from libos.blocking_push(src, libos.sga_alloc(b"z"))
            first = yield from libos.blocking_pop(srt)
            yield from libos.close(src)
            second = yield from libos.blocking_pop(srt)
            return first.error, second.error

        assert run(w, proc()) == (None, "eof")
        assert_no_hung_tokens(libos)

    def test_upstream_element_fault_reaches_downstream_pops(self):
        """An error in one stage fails pops across the whole chain."""
        w, libos = make_libos()
        src = libos.queue()

        def boom(sga):
            if sga.tobytes() == b"bad":
                raise ValueError("poisoned element")
            return sga

        mapped = libos.map(src, boom)
        flt = libos.filter(mapped, lambda sga: True)

        def proc():
            yield from libos.blocking_push(src, libos.sga_alloc(b"ok"))
            first = yield from libos.blocking_pop(flt)
            yield from libos.blocking_push(src, libos.sga_alloc(b"bad"))
            second = yield from libos.blocking_pop(flt)
            third = yield from libos.blocking_pop(flt)
            return first.error, second.error, third.error

        first, second, third = run(w, proc())
        assert first is None
        assert second is not None and "element function failed" in second
        assert third is not None  # subsequent pops error too - no hang
        assert_no_hung_tokens(libos)


class TestElementFunctionFaults:
    def test_cpu_placed_raise_fails_pops(self):
        w, libos = make_libos()
        src = libos.queue()
        mapped = libos.map(src, lambda sga: 1 // 0)

        def proc():
            yield from libos.blocking_push(src, libos.sga_alloc(b"x"))
            result = yield from libos.blocking_pop(mapped)
            return result.error

        error = run(w, proc())
        assert error is not None and "element function failed" in error
        assert_no_hung_tokens(libos)

    def test_device_placed_raise_fails_pops(self):
        w, libos = make_libos(with_offload=True)
        src = libos.queue()
        mapped = libos.map(src, lambda sga: 1 // 0)

        def proc():
            yield from libos.blocking_push(src, libos.sga_alloc(b"x"))
            result = yield from libos.blocking_pop(mapped)
            return result.error

        error = run(w, proc())
        assert error is not None and "element function failed" in error
        assert w.tracer.get("offload0.offload_element_faults") == 1
        assert_no_hung_tokens(libos)

    def test_push_side_raise_fails_the_push_token(self):
        w, libos = make_libos()
        src = libos.queue()

        def boom(sga):
            raise RuntimeError("push-side fault")

        mapped = libos.map(src, boom)

        def proc():
            result = yield from libos.blocking_push(
                mapped, libos.sga_alloc(b"x"))
            # Tear the pipeline down so the pump's (legitimately)
            # outstanding source pop is cancelled, then the token
            # ledger must close.
            yield from libos.close(mapped)
            return result.error

        error = run(w, proc())
        assert error is not None and "element function failed" in error
        assert_no_hung_tokens(libos)
