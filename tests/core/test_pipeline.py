"""Tests for queue pipelines: merge, filter, sort, map, qconnect, offload."""

import pytest

from repro.core.api import LibOS
from repro.hw.offload import OffloadEngine

from ..conftest import World


def make_libos(with_offload=False, capabilities=None):
    w = World()
    host = w.add_host("h", cores=4)
    libos = LibOS(host, "demi")
    if with_offload:
        libos.offload_engine = OffloadEngine(host, capabilities=capabilities)
    return w, libos


def run(w, gen, limit=10**12):
    p = w.sim.spawn(gen)
    w.sim.run_until_complete(p, limit=limit)
    return p.value


def payload_of(result):
    return result.sga.tobytes()


class TestFilter:
    def test_pop_side_filtering(self):
        w, libos = make_libos()
        src = libos.queue()
        flt = libos.filter(src, lambda sga: sga.tobytes().startswith(b"keep"))

        def proc():
            for data in (b"keep-1", b"drop-1", b"keep-2", b"drop-2"):
                yield from libos.blocking_push(src, libos.sga_alloc(data))
            out = []
            for _ in range(2):
                result = yield from libos.blocking_pop(flt)
                out.append(payload_of(result))
            return out

        assert run(w, proc()) == [b"keep-1", b"keep-2"]
        assert w.tracer.get("demi.pipeline.filter_dropped") == 2

    def test_push_side_filtering(self):
        w, libos = make_libos()
        src = libos.queue()
        flt = libos.filter(src, lambda sga: sga.nbytes >= 4)

        def proc():
            r1 = yield from libos.blocking_push(flt, libos.sga_alloc(b"long-enough"))
            r2 = yield from libos.blocking_push(flt, libos.sga_alloc(b"no"))
            return r1.value, r2.value

        v1, v2 = run(w, proc())
        assert v1 is None          # passed through
        assert v2 == "filtered"    # dropped at the filter

    def test_filter_runs_on_cpu_without_engine(self):
        w, libos = make_libos()
        src = libos.queue()
        flt = libos.filter(src, lambda sga: True)

        def proc():
            yield from libos.blocking_push(src, libos.sga_alloc(b"x"))
            yield from libos.blocking_pop(flt)

        run(w, proc())
        assert w.tracer.get("demi.pipeline.filter_cpu_elements") == 1
        assert w.tracer.get("demi.pipeline.filter_device_elements") == 0

    def test_filter_offloads_to_device_when_supported(self):
        w, libos = make_libos(with_offload=True)
        src = libos.queue()
        flt = libos.filter(src, lambda sga: True)

        def proc():
            yield from libos.blocking_push(src, libos.sga_alloc(b"x"))
            yield from libos.blocking_pop(flt)

        run(w, proc())
        assert w.tracer.get("demi.pipeline.filter_device_elements") == 1
        assert w.tracer.get("demi.pipeline.filter_cpu_elements") == 0
        assert libos.offload_engine.device_busy_ns > 0

    def test_filter_falls_back_when_device_lacks_capability(self):
        w, libos = make_libos(with_offload=True, capabilities={"map"})
        src = libos.queue()
        flt = libos.filter(src, lambda sga: True)

        def proc():
            yield from libos.blocking_push(src, libos.sga_alloc(b"x"))
            yield from libos.blocking_pop(flt)

        run(w, proc())
        assert w.tracer.get("demi.pipeline.filter_cpu_elements") == 1


class TestMap:
    def test_pop_side_transform(self):
        w, libos = make_libos()
        src = libos.queue()

        def upper(sga):
            return libos.sga_alloc(sga.tobytes().upper())

        mapped = libos.map(src, upper)

        def proc():
            yield from libos.blocking_push(src, libos.sga_alloc(b"quiet"))
            result = yield from libos.blocking_pop(mapped)
            return payload_of(result)

        assert run(w, proc()) == b"QUIET"

    def test_push_side_transform_applies_per_traversal(self):
        """Push applies fn on the way out; the pump applies it again on
        the way back in - so a push+pop round trip is fn(fn(x))."""
        w, libos = make_libos()
        src = libos.queue()
        mapped = libos.map(src, lambda sga: libos.sga_alloc(sga.tobytes()[::-1]))

        def proc():
            yield from libos.blocking_push(mapped, libos.sga_alloc(b"abc"))
            result = yield from libos.blocking_pop(mapped)
            return payload_of(result)

        # reverse(reverse(b"abc")) == b"abc"
        assert run(w, proc()) == b"abc"
        assert w.tracer.get("demi.pipeline.map_cpu_elements") == 2

    def test_chained_pipeline(self):
        """filter -> map compose into an I/O processing pipeline."""
        w, libos = make_libos()
        src = libos.queue()
        flt = libos.filter(src, lambda sga: not sga.tobytes().startswith(b"#"))
        mapped = libos.map(flt, lambda sga: libos.sga_alloc(sga.tobytes().strip()))

        def proc():
            for line in (b"# comment", b"  data-1  ", b"# another", b" data-2"):
                yield from libos.blocking_push(src, libos.sga_alloc(line))
            out = []
            for _ in range(2):
                result = yield from libos.blocking_pop(mapped)
                out.append(payload_of(result))
            return out

        assert run(w, proc()) == [b"data-1", b"data-2"]


class TestMerge:
    def test_pop_takes_from_either_source(self):
        w, libos = make_libos()
        q1, q2 = libos.queue(), libos.queue()
        merged = libos.merge(q1, q2)

        def proc():
            yield from libos.blocking_push(q1, libos.sga_alloc(b"from-1"))
            yield from libos.blocking_push(q2, libos.sga_alloc(b"from-2"))
            out = set()
            for _ in range(2):
                result = yield from libos.blocking_pop(merged)
                out.add(payload_of(result))
            return out

        assert run(w, proc()) == {b"from-1", b"from-2"}

    def test_push_goes_to_both_sources(self):
        w, libos = make_libos()
        q1, q2 = libos.queue(), libos.queue()
        merged = libos.merge(q1, q2)

        def proc():
            yield from libos.blocking_push(merged, libos.sga_alloc(b"dup"))
            # One copy went to each source; the pumps carry both back into
            # the merged buffer, so two pops observe the duplication.
            r1 = yield from libos.blocking_pop(merged)
            r2 = yield from libos.blocking_pop(merged)
            return payload_of(r1), payload_of(r2)

        assert run(w, proc()) == (b"dup", b"dup")


class TestSort:
    def test_pops_come_out_in_priority_order(self):
        w, libos = make_libos()
        src = libos.queue()
        sorted_qd = libos.sort(src, key=lambda sga: len(sga.tobytes()))

        def proc():
            for data in (b"mediums", b"x", b"long-payload-here"):
                yield from libos.blocking_push(src, libos.sga_alloc(data))
            # Let the pump drain the source into the sorted buffer.
            yield w.sim.timeout(100_000)
            out = []
            for _ in range(3):
                result = yield from libos.blocking_pop(sorted_qd)
                out.append(payload_of(result))
            return out

        assert run(w, proc()) == [b"x", b"mediums", b"long-payload-here"]

    def test_ties_preserve_fifo(self):
        w, libos = make_libos()
        src = libos.queue()
        sorted_qd = libos.sort(src, key=lambda sga: 0)

        def proc():
            for data in (b"a", b"b", b"c"):
                yield from libos.blocking_push(src, libos.sga_alloc(data))
            yield w.sim.timeout(100_000)
            out = []
            for _ in range(3):
                result = yield from libos.blocking_pop(sorted_qd)
                out.append(payload_of(result))
            return out

        assert run(w, proc()) == [b"a", b"b", b"c"]


class TestQconnect:
    def test_elements_flow_between_queues(self):
        w, libos = make_libos()
        q_in, q_out = libos.queue(), libos.queue()
        connector = libos.qconnect(q_in, q_out)

        def proc():
            for i in range(3):
                yield from libos.blocking_push(q_in, libos.sga_alloc(b"e%d" % i))
            out = []
            for _ in range(3):
                result = yield from libos.blocking_pop(q_out)
                out.append(payload_of(result))
            connector.stop()
            return out

        assert run(w, proc()) == [b"e0", b"e1", b"e2"]
        assert connector.moved == 3

    def test_stop_halts_flow(self):
        w, libos = make_libos()
        q_in, q_out = libos.queue(), libos.queue()
        connector = libos.qconnect(q_in, q_out)
        connector.stop()

        def proc():
            yield from libos.blocking_push(q_in, libos.sga_alloc(b"stranded"))
            yield w.sim.timeout(1_000_000)
            return libos.queue_of(q_out).ready_elements

        assert run(w, proc()) == 0


class TestOffloadAblation:
    def test_device_filter_saves_host_cpu(self):
        """C6's mechanism: same pipeline, device vs CPU placement."""
        def run_variant(with_offload):
            w, libos = make_libos(with_offload=with_offload)
            src = libos.queue()
            flt = libos.filter(src, lambda sga: sga.tobytes()[0] % 2 == 0)

            def proc():
                kept = 0
                for i in range(100):
                    yield from libos.blocking_push(
                        src, libos.sga_alloc(bytes([i]) + b"payload"))
                while kept < 50:
                    result = yield from libos.blocking_pop(flt)
                    kept += 1
                return kept

            run(w, proc())
            return libos.core.busy_ns

        cpu_variant = run_variant(False)
        offload_variant = run_variant(True)
        saved = cpu_variant - offload_variant
        # 100 elements x pipeline_element_cpu_ns moved off the host CPU.
        assert saved >= 100 * 200
