"""Tests for the Demikernel API over memory queues (the queue() syscall)."""

import pytest

from repro.core.api import LibOS
from repro.core.types import DemiError

from ..conftest import World


def make_libos(cores=4):
    w = World()
    host = w.add_host("h", cores=cores)
    libos = LibOS(host, "demi")
    return w, libos


def run(w, gen):
    p = w.sim.spawn(gen)
    w.run()
    return p.value


class TestPushPop:
    def test_blocking_push_then_pop(self):
        w, libos = make_libos()
        qd = libos.queue()

        def proc():
            sga = libos.sga_alloc(b"element")
            yield from libos.blocking_push(qd, sga)
            result = yield from libos.blocking_pop(qd)
            return result

        result = run(w, proc())
        assert result.ok
        assert result.sga.tobytes() == b"element"

    def test_pop_before_push_completes_on_arrival(self):
        w, libos = make_libos()
        qd = libos.queue()
        order = []

        def popper():
            result = yield from libos.blocking_pop(qd)
            order.append(("popped", result.sga.tobytes(), w.sim.now))

        def pusher():
            yield w.sim.timeout(5000)
            order.append(("pushing", w.sim.now))
            yield from libos.blocking_push(qd, libos.sga_alloc(b"late"))

        w.sim.spawn(popper())
        w.sim.spawn(pusher())
        w.run()
        assert order[0][0] == "pushing"
        assert order[1][:2] == ("popped", b"late")

    def test_elements_stay_atomic_and_fifo(self):
        w, libos = make_libos()
        qd = libos.queue()

        def proc():
            for payload in (b"first", b"second", b"third"):
                yield from libos.blocking_push(qd, libos.sga_alloc(payload))
            out = []
            for _ in range(3):
                result = yield from libos.blocking_pop(qd)
                out.append(result.sga.tobytes())
            return out

        assert run(w, proc()) == [b"first", b"second", b"third"]

    def test_multi_segment_sga_pops_as_one_element(self):
        w, libos = make_libos()
        qd = libos.queue()

        def proc():
            from repro.core.types import Sga, SgaSegment
            a = libos.mm.alloc(4).fill(b"HEAD")
            b = libos.mm.alloc(4).fill(b"BODY")
            sga = Sga([SgaSegment(a), SgaSegment(b)])
            yield from libos.blocking_push(qd, sga)
            result = yield from libos.blocking_pop(qd)
            return result

        result = run(w, proc())
        assert result.sga.tobytes() == b"HEADBODY"
        assert result.nbytes == 8

    def test_push_empty_sga_rejected(self):
        w, libos = make_libos()
        qd = libos.queue()
        from repro.core.types import Sga
        with pytest.raises(DemiError):
            libos.push(qd, Sga([]))

    def test_push_bad_qd_rejected(self):
        _, libos = make_libos()
        with pytest.raises(DemiError):
            libos.push(99, None)

    def test_bounded_queue_rejects_overflow(self):
        w, libos = make_libos()
        qd = libos.queue(capacity=2)

        def proc():
            results = []
            for i in range(3):
                r = yield from libos.blocking_push(qd, libos.sga_alloc(b"%d" % i))
                results.append(r.error)
            return results

        assert run(w, proc()) == [None, None, "full"]


class TestWaitSemantics:
    def test_wait_any_over_two_queues(self):
        w, libos = make_libos()
        q1, q2 = libos.queue(), libos.queue()

        def proc():
            t1 = libos.pop(q1)
            t2 = libos.pop(q2)
            w.sim.call_in(1000, lambda: libos.push(q2, libos.sga_alloc(b"two")))
            index, result = yield from libos.wait_any([t1, t2])
            return index, result.sga.tobytes()

        assert run(w, proc()) == (1, b"two")

    def test_wait_any_wakes_exactly_one_of_n_workers(self):
        """The C4 property at the API level: distinct tokens per worker."""
        w, libos = make_libos(cores=8)
        qd = libos.queue()
        woken = []

        def worker(name):
            result = yield from libos.blocking_pop(qd)
            woken.append((name, result.sga.tobytes()))

        for i in range(4):
            w.sim.spawn(worker(i))
        w.sim.call_in(1000, lambda: libos.push(qd, libos.sga_alloc(b"one")))
        w.run()
        # One element -> exactly one worker ran; three still blocked.
        assert len(woken) == 1

    def test_wait_all_over_pushes(self):
        w, libos = make_libos()
        qd = libos.queue()

        def proc():
            tokens = [libos.push(qd, libos.sga_alloc(b"%d" % i))
                      for i in range(5)]
            results = yield from libos.wait_all(tokens)
            return [r.ok for r in results]

        assert run(w, proc()) == [True] * 5

    def test_wait_returns_data_no_second_call(self):
        """wait() itself delivers the sga - the paper's anti-epoll point."""
        w, libos = make_libos()
        qd = libos.queue()

        def proc():
            token = libos.pop(qd)
            libos.push(qd, libos.sga_alloc(b"payload"))
            result = yield from libos.wait(token)
            return result.sga.tobytes()

        assert run(w, proc()) == b"payload"


class TestClose:
    def test_close_fails_pending_pops(self):
        w, libos = make_libos()
        qd = libos.queue()

        def popper():
            result = yield from libos.blocking_pop(qd)
            return result.error

        def closer():
            yield w.sim.timeout(1000)
            yield from libos.close(qd)

        p = w.sim.spawn(popper())
        w.sim.spawn(closer())
        w.run()
        assert p.value == "closed"

    def test_operations_after_close_rejected(self):
        w, libos = make_libos()
        qd = libos.queue()

        def proc():
            yield from libos.close(qd)
            with pytest.raises(DemiError):
                libos.pop(qd)
            return "checked"

        assert run(w, proc()) == "checked"


class TestUnsupportedControlPath:
    def test_base_libos_has_no_devices(self):
        w, libos = make_libos()

        def proc():
            with pytest.raises(DemiError):
                yield from libos.socket()
            with pytest.raises(DemiError):
                yield from libos.open("/x")
            return "checked"

        assert run(w, proc()) == "checked"


class TestAccounting:
    def test_push_pop_charge_cpu(self):
        w, libos = make_libos()
        qd = libos.queue()

        def proc():
            yield from libos.blocking_push(qd, libos.sga_alloc(b"x"))
            yield from libos.blocking_pop(qd)

        run(w, proc())
        c = libos.costs
        minimum = (c.libos_push_ns + c.libos_pop_ns + 2 * c.qtoken_ns
                   + 2 * c.wait_dispatch_ns)
        assert libos.core.busy_ns >= minimum

    def test_counters_track_operations(self):
        w, libos = make_libos()
        qd = libos.queue()

        def proc():
            yield from libos.blocking_push(qd, libos.sga_alloc(b"x"))
            yield from libos.blocking_pop(qd)

        run(w, proc())
        assert w.tracer.get("demi.pushes") == 1
        assert w.tracer.get("demi.pops") == 1
