"""The seeded-backoff retry helper (used by the replicated-KV router)."""

import pytest

from repro.core.retry import (RetryBudgetExceeded, backoff_delays,
                              retry_with_backoff)
from repro.core.types import DemiError
from repro.sim.engine import Simulator
from repro.sim.rand import Rng


def drive(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    if not proc.alive and proc._exc is not None:  # pragma: no cover
        raise proc._exc
    return proc


class TestBackoffSchedule:
    def test_delays_grow_exponentially_up_to_the_cap(self):
        delays = backoff_delays(Rng(1), base_delay_ns=1_000,
                                max_delay_ns=16_000, factor=2.0, attempts=8)
        caps = [min(16_000, 1_000 * 2 ** n) for n in range(8)]
        for delay, cap in zip(delays, caps):
            assert cap // 2 <= delay <= cap
        # The cap binds from attempt 4 on: delays stop growing past it.
        assert all(d <= 16_000 for d in delays)

    def test_schedule_is_seed_deterministic(self):
        kw = dict(base_delay_ns=10_000, max_delay_ns=1_000_000,
                  factor=2.0, attempts=6)
        assert backoff_delays(Rng(42), **kw) == backoff_delays(Rng(42), **kw)
        assert backoff_delays(Rng(42), **kw) != backoff_delays(Rng(43), **kw)


class TestRetryLoop:
    def _flaky(self, fail_times, log):
        state = {"calls": 0}

        def attempt():
            state["calls"] += 1
            log.append(state["calls"])
            if state["calls"] <= fail_times:
                raise DemiError("transient %d" % state["calls"])
            return "ok"
            yield  # pragma: no cover - makes this a generator

        return attempt

    def test_succeeds_after_transient_failures(self):
        sim = Simulator()
        log = []

        def body():
            result = yield from retry_with_backoff(
                sim, self._flaky(3, log), rng=Rng(7), base_delay_ns=1_000,
                max_attempts=8, budget_ns=10_000_000)
            return result

        proc = drive(sim, body())
        assert proc.value == "ok"
        assert log == [1, 2, 3, 4]
        assert sim.now > 0  # it actually backed off between attempts

    def test_gives_up_with_typed_exception_and_history(self):
        sim = Simulator()
        log = []

        def body():
            try:
                yield from retry_with_backoff(
                    sim, self._flaky(99, log), rng=Rng(7),
                    base_delay_ns=1_000, max_attempts=4,
                    budget_ns=10_000_000, op="flaky-op")
            except RetryBudgetExceeded as err:
                return err
            raise AssertionError("should have given up")

        proc = drive(sim, body())
        err = proc.value
        assert err.attempts == 4 and len(log) == 4
        assert err.op == "flaky-op"
        assert isinstance(err.last_error, DemiError)
        assert err.__cause__ is err.last_error
        assert err.elapsed_ns == sim.now

    def test_time_budget_caps_before_max_attempts(self):
        sim = Simulator()
        log = []

        def slow_attempt():
            log.append(sim.now)
            yield sim.timeout(400_000)  # each attempt eats the budget
            raise DemiError("still down")

        def body():
            with pytest.raises(RetryBudgetExceeded) as exc_info:
                yield from retry_with_backoff(
                    sim, slow_attempt, rng=Rng(7), base_delay_ns=1_000,
                    max_attempts=100, budget_ns=1_000_000)
            return exc_info.value

        proc = drive(sim, body())
        assert proc.value.attempts < 100
        assert sim.now <= 1_000_000 + 400_000  # one attempt may straddle

    def test_unlisted_exceptions_propagate_immediately(self):
        sim = Simulator()

        def broken():
            raise ValueError("a bug, not a fault")
            yield  # pragma: no cover

        def body():
            with pytest.raises(ValueError):
                yield from retry_with_backoff(sim, broken, rng=Rng(7),
                                              retry_on=(DemiError,))
            return sim.now

        proc = drive(sim, body())
        assert proc.value == 0  # no backoff happened

    def test_same_seed_replays_the_same_timeline(self):
        ends = []
        for _ in range(2):
            sim = Simulator()

            def body():
                with pytest.raises(RetryBudgetExceeded):
                    yield from retry_with_backoff(
                        sim, self._flaky(99, []), rng=Rng(1234),
                        base_delay_ns=5_000, max_attempts=6,
                        budget_ns=50_000_000)
                return sim.now

            ends.append(drive(sim, body()).value)
        assert ends[0] == ends[1]
