"""Regression tests for close() ordering with in-flight pops.

The bug: ``LibOS.close()`` removed the qd from the descriptor table
before retiring outstanding qtokens, so a pop waiter woken with the
``'closed'`` error would trip over "bad queue descriptor" the moment its
cleanup path called ``close(qd)`` again.  Pops must observe 'closed'
while the descriptor is still resolvable, and a re-close of an
already-closed qd must be a charged no-op.
"""

import pytest

from repro.core.api import LibOS
from repro.core.types import DemiError, DemiTimeout

from ..conftest import World


def make_libos():
    w = World()
    host = w.add_host("h", cores=4)
    return w, LibOS(host, "demi")


class TestCloseWithPendingPop:
    def test_pending_pop_observes_closed(self):
        w, libos = make_libos()
        qd = libos.queue()
        seen = []

        def popper():
            result = yield from libos.blocking_pop(qd)
            seen.append(result)

        def closer():
            yield w.sim.timeout(1000)
            yield from libos.close(qd)

        w.sim.spawn(popper())
        w.sim.spawn(closer())
        w.run()
        assert len(seen) == 1
        assert not seen[0].ok
        assert seen[0].error == "closed"

    def test_waiter_cleanup_close_is_charged_noop(self):
        """The race the fix exists for: the woken waiter closes the qd too."""
        w, libos = make_libos()
        qd = libos.queue()
        done = []

        def popper():
            result = yield from libos.blocking_pop(qd)
            assert result.error == "closed"
            # Typical app cleanup: close whatever descriptor errored.
            yield from libos.close(qd)
            done.append(w.sim.now)

        def closer():
            yield w.sim.timeout(1000)
            yield from libos.close(qd)

        w.sim.spawn(popper())
        w.sim.spawn(closer())
        w.run()
        assert done, "pop waiter never finished its cleanup close"
        assert libos.tracer.counters["demi.ctrl.close"] == 1
        assert libos.tracer.counters["demi.ctrl.close_noop"] == 1

    def test_qtoken_retired_not_leaked(self):
        w, libos = make_libos()
        qd = libos.queue()
        token = libos.pop(qd)

        def closer():
            yield from libos.close(qd)
            result = yield from libos.wait(token)
            return result

        p = w.sim.spawn(closer())
        w.run()
        assert p.value.error == "closed"
        assert libos.qtokens.outstanding == 0

    def test_lookup_after_close_says_closed(self):
        w, libos = make_libos()
        qd = libos.queue()

        def proc():
            yield from libos.close(qd)

        w.sim.spawn(proc())
        w.run()
        with pytest.raises(DemiError, match="closed"):
            libos.queue_of(qd)
        # A never-allocated descriptor still reads as plain bad.
        with pytest.raises(DemiError, match="bad queue descriptor"):
            libos.queue_of(qd + 999)


class TestLegacyTimeoutShim:
    """The sentinel shim is gone: legacy_timeout=True is a TypeError."""

    def test_wait_any_legacy_flag_raises_type_error(self):
        w, libos = make_libos()
        qd = libos.queue()
        token = libos.pop(qd)

        def proc():
            with pytest.raises(TypeError, match="DemiTimeout"):
                yield from libos.wait_any(
                    [token], timeout_ns=1000, legacy_timeout=True)

        w.sim.spawn(proc())
        w.run()

    def test_wait_all_legacy_flag_raises_type_error(self):
        w, libos = make_libos()
        qd = libos.queue()
        token = libos.pop(qd)

        def proc():
            with pytest.raises(TypeError, match="legacy_timeout"):
                yield from libos.wait_all(
                    [token], timeout_ns=1000, legacy_timeout=True)

        w.sim.spawn(proc())
        w.run()

    def test_default_still_raises(self):
        w, libos = make_libos()
        qd = libos.queue()
        token = libos.pop(qd)

        def proc():
            with pytest.raises(DemiTimeout):
                yield from libos.wait_any([token], timeout_ns=1000)

        w.sim.spawn(proc())
        w.run()
