"""Edge cases across core: pipelines closing, wait charges, server apps."""

import pytest

from repro.core.api import LibOS
from repro.core.types import DemiError

from ..conftest import World, make_dpdk_libos_pair


def make_libos(cores=4):
    w = World()
    host = w.add_host("h", cores=cores)
    return w, LibOS(host, "demi")


def run(w, gen, limit=10**12):
    p = w.sim.spawn(gen)
    w.sim.run_until_complete(p, limit=limit)
    return p.value


class TestPipelineLifecycle:
    def test_closing_derived_queue_stops_its_pump(self):
        w, libos = make_libos()
        src = libos.queue()
        flt = libos.filter(src, lambda sga: True)
        flt_queue = libos.queue_of(flt)

        def proc():
            yield from libos.close(flt)
            # The pump should die; pushes to src just buffer now.
            yield from libos.blocking_push(src, libos.sga_alloc(b"x"))
            yield w.sim.timeout(100_000)
            return libos.queue_of(src).ready_elements

        remaining = run(w, proc())
        assert remaining == 1  # pump no longer consumed it
        assert flt_queue.closed

    def test_closing_source_ends_derived_pops_cleanly(self):
        w, libos = make_libos()
        src = libos.queue()
        mapped = libos.map(src, lambda sga: sga)

        def proc():
            yield from libos.blocking_push(src, libos.sga_alloc(b"one"))
            result = yield from libos.blocking_pop(mapped)
            yield from libos.close(src)
            yield w.sim.timeout(100_000)
            return result.sga.tobytes()

        assert run(w, proc()) == b"one"

    def test_pop_on_closed_sorted_queue_errors(self):
        w, libos = make_libos()
        src = libos.queue()
        sorted_qd = libos.sort(src, key=lambda sga: 0)

        def proc():
            yield from libos.close(sorted_qd)
            with pytest.raises(DemiError):
                libos.pop(sorted_qd)
            return "checked"

        assert run(w, proc()) == "checked"

    def test_filter_chain_three_deep(self):
        w, libos = make_libos()
        src = libos.queue()
        step1 = libos.filter(src, lambda sga: sga.nbytes >= 2)
        step2 = libos.filter(step1, lambda sga: sga.tobytes()[0:1] != b"#")
        step3 = libos.map(step2, lambda sga: libos.sga_alloc(
            sga.tobytes() + b"!"))

        def proc():
            for data in (b"x", b"#comment", b"keep1", b"keep2"):
                yield from libos.blocking_push(src, libos.sga_alloc(data))
            out = []
            for _ in range(2):
                result = yield from libos.blocking_pop(step3)
                out.append(result.sga.tobytes())
            return out

        assert run(w, proc()) == [b"keep1!", b"keep2!"]


class TestWaitCharging:
    def test_each_wait_charges_dispatch_cost(self):
        w, libos = make_libos()
        qd = libos.queue()

        def proc():
            before = libos.core.busy_ns
            token = libos.push(qd, libos.sga_alloc(b"x"))
            yield from libos.wait(token)
            return libos.core.busy_ns - before

        charged = run(w, proc())
        assert charged >= libos.costs.wait_dispatch_ns

    def test_wait_on_already_completed_token(self):
        w, libos = make_libos()
        qd = libos.queue()

        def proc():
            token = libos.push(qd, libos.sga_alloc(b"x"))
            yield w.sim.timeout(10_000)  # completion long since fired
            result = yield from libos.wait(token)
            return result.ok

        assert run(w, proc()) is True

    def test_double_wait_on_same_token_rejected(self):
        w, libos = make_libos()
        qd = libos.queue()

        def proc():
            token = libos.push(qd, libos.sga_alloc(b"x"))
            yield from libos.wait(token)
            with pytest.raises(DemiError):
                yield from libos.wait(token)  # token retired
            return "checked"

        assert run(w, proc()) == "checked"


class TestKvServerMultiConnection:
    def test_two_clients_served_interleaved(self):
        from repro.apps.kvstore import (
            OP_GET,
            OP_PUT,
            DemiKvServer,
            demi_kv_client,
        )
        w, client_libos, server_libos = make_dpdk_libos_pair()
        server = DemiKvServer(server_libos)
        w.sim.spawn(server.run())

        ops_a = [(OP_PUT, b"a-key", b"a-value"), (OP_GET, b"a-key", None)]
        ops_b = [(OP_PUT, b"b-key", b"b-value"), (OP_GET, b"b-key", None)]
        pa = w.sim.spawn(demi_kv_client(client_libos, "10.0.0.2", ops_a))
        pb = w.sim.spawn(demi_kv_client(client_libos, "10.0.0.2", ops_b))
        w.sim.run_until_complete(pa, limit=10**13)
        w.sim.run_until_complete(pb, limit=10**13)
        server.stop()
        assert pa.value[0][1] == (True, b"a-value")
        assert pb.value[0][1] == (True, b"b-value")
        assert server.requests_served == 4


class TestSpdkEdges:
    def test_fsync_with_nothing_buffered(self):
        from ..conftest import make_spdk_libos
        w, libos = make_spdk_libos()

        def proc():
            qd = yield from libos.creat("/empty")
            flushed = yield from libos.fsync(qd)
            return flushed

        assert run(w, proc()) == 0

    def test_duplicate_creat_rejected(self):
        from ..conftest import make_spdk_libos
        w, libos = make_spdk_libos()

        def proc():
            yield from libos.creat("/dup")
            with pytest.raises(DemiError):
                yield from libos.creat("/dup")
            return "checked"

        assert run(w, proc()) == "checked"

    def test_two_open_handles_have_independent_cursors(self):
        from ..conftest import make_spdk_libos
        w, libos = make_spdk_libos()

        def proc():
            qd = yield from libos.creat("/shared")
            for i in range(3):
                yield from libos.blocking_push(qd, libos.sga_alloc(b"r%d" % i))
            h1 = yield from libos.open("/shared")
            h2 = yield from libos.open("/shared")
            r1 = yield from libos.blocking_pop(h1)
            r2 = yield from libos.blocking_pop(h2)
            return r1.sga.tobytes(), r2.sga.tobytes()

        first, second = run(w, proc())
        assert first == second == b"r0"  # both start at record 0
