"""Regression tests for the wait-path bugfixes.

Three distinct defects, each pinned here:

1. ``wait_all`` double-counted ``WAIT_TIMEOUTS`` (the inner ``wait_any``
   counted before raising, then the outer ``except`` counted again);
2. a ``wait_any`` that won before its deadline left the ``Timeout``
   entry on the simulator heap and stale ``_MultiWait`` callbacks on the
   losing tokens' completions - unbounded growth under a server doing
   millions of timed waits;
3. ``wait_all`` with an already-exhausted budget re-subscribed to every
   remaining completion with a zero-ns timer race instead of raising
   ``DemiTimeout`` immediately.
"""

from repro.core.types import DemiTimeout, OP_POP, QResult
from repro.core.wait import QTokenTable
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.telemetry import names


def make():
    sim = Simulator()
    tracer = Tracer(sim)
    return sim, tracer, QTokenTable(sim, tracer, "qt")


class TestWaitTimeoutsCountedOnce:
    def test_wait_all_timeout_counts_exactly_once(self):
        sim, tracer, table = make()
        t1, _ = table.create()
        t2, _ = table.create()

        def waiter():
            try:
                yield from table.wait_all([t1, t2], timeout_ns=1000)
            except DemiTimeout as err:
                return err

        p = sim.spawn(waiter())
        sim.run()
        assert isinstance(p.value, DemiTimeout)
        assert tracer.get("qt." + names.WAIT_TIMEOUTS) == 1

    def test_wait_all_partial_progress_still_counts_once(self):
        sim, tracer, table = make()
        t1, _ = table.create()
        t2, _ = table.create()

        def waiter():
            try:
                yield from table.wait_all([t1, t2], timeout_ns=1000)
            except DemiTimeout as err:
                return err

        p = sim.spawn(waiter())
        sim.call_in(100, table.complete, t1, QResult(OP_POP, 1))
        sim.run()
        assert isinstance(p.value, DemiTimeout)
        assert tracer.get("qt." + names.WAIT_TIMEOUTS) == 1

    def test_wait_any_timeout_counts_exactly_once(self):
        sim, tracer, table = make()
        token, _ = table.create()

        def waiter():
            try:
                yield from table.wait_any([token], timeout_ns=1000)
            except DemiTimeout as err:
                return err

        p = sim.spawn(waiter())
        sim.run()
        assert isinstance(p.value, DemiTimeout)
        assert tracer.get("qt." + names.WAIT_TIMEOUTS) == 1


class TestTimedWaitsStayBounded:
    N_WAITS = 10_000

    def test_heap_and_callbacks_bounded_across_10k_timed_waits(self):
        """A won timed wait must withdraw its timer and its callbacks.

        ``idle`` is a long-lived token (think: the accept queue of a
        server) that loses every round; the winning token is fresh each
        round.  Before the fix, every round left one Timeout on the
        heap (deadline 1 ms out, rounds 10 ns apart -> ~100k live
        entries) and one stale callback on ``idle``'s completion.
        """
        sim, tracer, table = make()
        idle, idle_done = table.create()
        heap_sizes = []
        cb_sizes = []

        def waiter():
            for i in range(self.N_WAITS):
                token, _ = table.create()
                sim.call_in(10, table.complete, token,
                            QResult(OP_POP, 1, nbytes=i))
                index, result = yield from table.wait_any(
                    [idle, token], timeout_ns=1_000_000)
                assert index == 1 and result.nbytes == i
                heap_sizes.append(len(sim._heap))
                cb_sizes.append(len(idle_done._callbacks))

        sim.spawn(waiter())
        sim.run()
        # The losing token keeps zero stale callbacks between rounds...
        assert max(cb_sizes) == 0
        # ...and the heap stays at O(live entries), not O(waits issued)
        # (the ceiling is the tombstone-compaction threshold, not the
        # 10k waits or their ~100k overlapping deadlines).
        assert max(heap_sizes) <= 128
        assert tracer.get("qt." + names.WAIT_TIMEOUTS) in (None, 0)

    def test_cancelled_timer_never_fires(self):
        sim, _tracer, table = make()
        token, _ = table.create()

        def waiter():
            index, _ = yield from table.wait_any([token], timeout_ns=500)
            return index

        p = sim.spawn(waiter())
        sim.call_in(100, table.complete, token, QResult(OP_POP, 1))
        end = sim.run()
        assert p.value == 0
        # Nothing kept the clock running to the cancelled 500 ns mark.
        assert end == 100


class TestExhaustedBudgetRaisesImmediately:
    def test_deadline_hit_between_rounds_raises_without_resubscribe(self):
        """t1 completes exactly at the deadline; the next round must not
        re-subscribe to t2 with a zero-ns timer race."""
        sim, tracer, table = make()
        t1, _ = table.create()
        t2, t2_done = table.create()

        def waiter():
            try:
                yield from table.wait_all([t1, t2], timeout_ns=100)
            except DemiTimeout as err:
                return err

        p = sim.spawn(waiter())
        sim.call_in(100, table.complete, t1, QResult(OP_POP, 1))
        sim.run()
        assert isinstance(p.value, DemiTimeout)
        assert p.value.timeout_ns == 100
        # Raised at the deadline itself, not after an extra event-loop
        # round trip through a zero-ns timeout.
        assert sim.now == 100
        assert tracer.get("qt." + names.WAIT_TIMEOUTS) == 1
        # The losing token was never re-subscribed to.
        assert len(t2_done._callbacks) == 0

    def test_zero_timeout_raises_before_subscribing(self):
        sim, tracer, table = make()
        token, done = table.create()

        def waiter():
            try:
                yield from table.wait_all([token], timeout_ns=0)
            except DemiTimeout as err:
                return err

        p = sim.spawn(waiter())
        sim.run()
        assert isinstance(p.value, DemiTimeout)
        assert len(done._callbacks) == 0
        assert tracer.get("qt." + names.WAIT_TIMEOUTS) == 1
