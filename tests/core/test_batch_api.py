"""Edge cases of the batch API: push_batch, pop_batch, wait_any_n.

The batch calls amortize the syscall-shaped costs (one charge covers
the whole batch) but must keep the singleton calls' semantics exactly:
same errors, same exactly-one-waiter guarantee, same token lifecycle.
"""

import pytest

from repro.core.api import LibOS
from repro.core.types import DemiError, DemiTimeout
from repro.testbed import World


def fresh_libos():
    w = World()
    host = w.add_host("h")
    return w, LibOS(host, "demi")


def run_proc(w, gen):
    p = w.sim.spawn(gen)
    w.run()
    return p.value


class TestPushBatchEdges:
    def test_empty_batch_rejected(self):
        _w, libos = fresh_libos()
        with pytest.raises(DemiError):
            libos.push_batch([])

    def test_empty_sga_rejected(self):
        _w, libos = fresh_libos()
        qd = libos.queue()
        with pytest.raises(DemiError):
            libos.push_batch([(qd, libos.sga_alloc(b"ok")),
                              (qd, libos.sga_alloc(b""))])

    def test_unknown_qd_rejected(self):
        _w, libos = fresh_libos()
        with pytest.raises(DemiError):
            libos.push_batch([(9999, libos.sga_alloc(b"x"))])

    def test_batch_charge_is_amortized(self):
        # One batched push of N charges less CPU than N singleton
        # pushes: the fixed libos_push cost is paid once per batch.
        _w1, solo = fresh_libos()
        qd = solo.queue()
        for i in range(8):
            solo.push(qd, solo.sga_alloc(b"m%d" % i))
        _w2, batched = fresh_libos()
        qd2 = batched.queue()
        batched.push_batch([(qd2, batched.sga_alloc(b"m%d" % i))
                            for i in range(8)])
        assert batched.core.busy_ns < solo.core.busy_ns


class TestPopBatchEdges:
    def test_empty_batch_rejected(self):
        _w, libos = fresh_libos()
        with pytest.raises(DemiError):
            libos.pop_batch([])

    def test_tokens_cancellable_like_singletons(self):
        _w, libos = fresh_libos()
        qds = [libos.queue() for _ in range(3)]
        tokens = libos.pop_batch(qds)
        for token in tokens:
            libos.cancel(token)
        t = libos.qtokens
        assert t.cancelled == 3
        assert t.created == t.completed + t.cancelled + t.in_flight


class TestWaitAnyN:
    def test_returns_all_ready_sorted_by_index(self):
        w, libos = fresh_libos()
        qds = [libos.queue() for _ in range(4)]

        def proc():
            # Fill queues 3, 1, 0 before popping; queue 2 stays empty.
            for i in (3, 1, 0):
                yield from libos.blocking_push(
                    qds[i], libos.sga_alloc(b"q%d" % i))
            tokens = libos.pop_batch(qds)
            ready = yield from libos.wait_any_n(tokens)
            return ready

        ready = run_proc(w, proc())
        assert [i for i, _ in ready] == [0, 1, 3]
        assert [r.sga.tobytes() for _, r in ready] == [b"q0", b"q1", b"q3"]

    def test_max_n_bounds_the_drain_and_rest_stay_valid(self):
        w, libos = fresh_libos()
        qds = [libos.queue() for _ in range(4)]

        def proc():
            for i in range(4):
                yield from libos.blocking_push(
                    qds[i], libos.sga_alloc(b"q%d" % i))
            tokens = libos.pop_batch(qds)
            first = yield from libos.wait_any_n(tokens, max_n=2)
            assert len(first) == 2
            # The undrained tokens are still waitable afterwards.
            rest = [t for i, t in enumerate(tokens)
                    if i not in {j for j, _ in first}]
            results = yield from libos.wait_all(rest)
            return len(first) + len(results)

        assert run_proc(w, proc()) == 4

    def test_returned_tokens_are_retired(self):
        w, libos = fresh_libos()
        qd = libos.queue()

        def proc():
            yield from libos.blocking_push(qd, libos.sga_alloc(b"x"))
            tokens = libos.pop_batch([qd])
            yield from libos.wait_any_n(tokens)
            with pytest.raises(DemiError):
                yield from libos.wait(tokens[0])
            return True

        assert run_proc(w, proc()) is True

    def test_empty_token_list_rejected(self):
        w, libos = fresh_libos()

        def proc():
            with pytest.raises(DemiError):
                yield from libos.wait_any_n([])
            return True

        assert run_proc(w, proc()) is True

    def test_timeout_raises_and_tokens_survive(self):
        w, libos = fresh_libos()
        qd = libos.queue()

        def proc():
            tokens = libos.pop_batch([qd])
            with pytest.raises(DemiTimeout):
                yield from libos.wait_any_n(tokens, timeout_ns=10_000)
            yield from libos.blocking_push(qd, libos.sga_alloc(b"late"))
            result = yield from libos.wait(tokens[0])
            return result.sga.tobytes()

        assert run_proc(w, proc()) == b"late"

    def test_batch_counters_account_for_the_drain(self):
        w, libos = fresh_libos()
        qds = [libos.queue() for _ in range(3)]

        def proc():
            for i in range(3):
                yield from libos.blocking_push(
                    qds[i], libos.sga_alloc(b"q%d" % i))
            tokens = libos.pop_batch(qds)
            yield from libos.wait_any_n(tokens)

        run_proc(w, proc())
        assert w.tracer.get("demi.batch_waits") == 1
        assert w.tracer.get("demi.batch_wait_completions") == 3
        assert w.tracer.get("demi.batch_pops") == 1
