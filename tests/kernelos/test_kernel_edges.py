"""Edge-case tests for the kernel: fd misuse, UDP close, dispatch errors."""

import pytest

from repro.kernelos.kernel import KernelError

from ..conftest import World, make_kernel_pair


def run(w, gen):
    p = w.sim.spawn(gen)
    w.run()
    return p.value


class TestFdTable:
    def test_close_bad_fd_raises(self):
        w, ka, _ = make_kernel_pair()

        def proc():
            sys = ka.thread()
            with pytest.raises(KernelError):
                yield from sys.close(99)
            return "checked"

        assert run(w, proc()) == "checked"

    def test_fd_kind_mismatch_raises(self):
        w, ka, _ = make_kernel_pair()

        def proc():
            sys = ka.thread()
            fd = yield from sys.socket()
            with pytest.raises(KernelError):
                yield from sys.epoll_wait(fd)  # a socket, not an epoll
            return "checked"

        assert run(w, proc()) == "checked"

    def test_fds_are_monotone_from_three(self):
        w, ka, _ = make_kernel_pair()

        def proc():
            sys = ka.thread()
            fd1 = yield from sys.socket()
            fd2 = yield from sys.socket()
            return fd1, fd2

        fd1, fd2 = run(w, proc())
        assert fd1 == 3 and fd2 == 4


class TestUdpLifecycle:
    def test_close_unbinds_udp_port(self):
        w, ka, _ = make_kernel_pair()

        def proc():
            sys = ka.thread()
            fd = yield from sys.socket_udp()
            yield from sys.bind_udp(fd, 9000)
            yield from sys.close(fd)
            # Port free: bind again succeeds.
            fd2 = yield from sys.socket_udp()
            yield from sys.bind_udp(fd2, 9000)
            return "rebound"

        assert run(w, proc()) == "rebound"

    def test_sendto_implicit_bind(self):
        w, ka, kb = make_kernel_pair()
        got = []

        def server():
            sys = kb.thread()
            fd = yield from sys.socket_udp()
            yield from sys.bind_udp(fd, 53)
            data, ip, port = yield from sys.recvfrom(fd)
            got.append((data, ip))

        def client():
            sys = ka.thread()
            fd = yield from sys.socket_udp()
            # No explicit bind: sendto binds an ephemeral port itself.
            yield from sys.sendto(fd, b"implicit", "10.0.0.2", 53)

        w.sim.spawn(server())
        run(w, client())
        assert got == [(b"implicit", "10.0.0.1")]


class TestDispatchErrors:
    def make_host_kernel(self):
        from repro.kernelos.kernel import Kernel
        w = World()
        host = w.add_host("h")
        kernel = Kernel(host, w.fabric, "02:00:00:00:08:01", "10.0.0.9")
        return w, kernel

    def test_read_on_socket_fd_raises(self):
        w, kernel = self.make_host_kernel()

        def proc():
            sys = kernel.thread()
            fd = yield from sys.socket()
            with pytest.raises(KernelError):
                yield from sys.read(fd, 10)
            return "checked"

        assert run(w, proc()) == "checked"

    def test_write_on_pipe_read_end_raises(self):
        w, kernel = self.make_host_kernel()

        def proc():
            sys = kernel.thread()
            rfd, _wfd = yield from sys.pipe()
            with pytest.raises(KernelError):
                yield from sys.write(rfd, b"wrong way")
            return "checked"

        assert run(w, proc()) == "checked"

    def test_pipe_close_on_non_pipe_raises(self):
        w, kernel = self.make_host_kernel()

        def proc():
            sys = kernel.thread()
            fd = yield from sys.socket()
            with pytest.raises(KernelError):
                yield from sys.pipe_close(fd)
            return "checked"

        assert run(w, proc()) == "checked"

    def test_file_ops_without_filesystem_raise(self):
        w, kernel = self.make_host_kernel()
        assert kernel.vfs is None

        def proc():
            sys = kernel.thread()
            with pytest.raises(KernelError):
                yield from sys.creat("/nofs")
            return "checked"

        assert run(w, proc()) == "checked"


class TestEpollWithUdp:
    def test_epoll_reports_udp_readability(self):
        w, ka, kb = make_kernel_pair()
        result = {}

        def client():
            sys = ka.thread()
            fd = yield from sys.socket_udp()
            yield w.sim.timeout(500_000)
            yield from sys.sendto(fd, b"dgram", "10.0.0.2", 53)

        def server():
            sys = kb.thread()
            fd = yield from sys.socket_udp()
            yield from sys.bind_udp(fd, 53)
            epfd = yield from sys.epoll_create()
            yield from sys.epoll_ctl_add(epfd, fd)
            ready = yield from sys.epoll_wait(epfd)
            assert ready == [fd]
            data, _ip, _port = yield from sys.recvfrom(fd)
            result["data"] = data

        w.sim.spawn(client())
        w.sim.spawn(server())
        w.run()
        assert result["data"] == b"dgram"


class TestAcceptBacklog:
    def test_listener_backlog_overflow_resets_extras(self):
        w, ka, kb = make_kernel_pair()

        def server():
            sys = kb.thread()
            lfd = yield from sys.socket()
            yield from sys.bind(lfd, 80)
            yield from sys.listen(lfd, backlog=1)
            yield w.sim.timeout(50_000_000)  # never accept

        def client(i):
            sys = ka.thread(ka.host.cpus[min(i, 3)])
            fd = yield from sys.socket()
            try:
                yield from sys.connect(fd, "10.0.0.2", 80)
                return "connected"
            except Exception:
                return "refused"

        w.sim.spawn(server())
        procs = [w.sim.spawn(client(i)) for i in range(3)]
        w.run(until=60_000_000)
        # The handshake itself completes (SYN cookies would behave the
        # same way), but the listener aborts everything past the backlog:
        # overflowing connections get reset right after establishing.
        assert w.tracer.get("server.kstack.tcp_accept_overflow") == 2
        # Only the one queued connection survives on the client stack.
        assert ka.stack.tcp_connection_count <= 1
