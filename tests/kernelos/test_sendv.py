"""Tests for the vectored send syscall (``sendv``/writev).

``sendv`` is the kernel-stack answer to the libOS batch push: the
per-byte copies remain, but N buffers cross the user/kernel boundary
through one syscall.
"""

import pytest

from repro.kernelos.kernel import KernelError

from ..conftest import make_kernel_pair

CHUNKS = [b"alpha-", b"beta-", b"gamma-", b"delta"]
TOTAL = sum(len(c) for c in CHUNKS)


def run_pair(w, client_gen, server_gen):
    cp = w.sim.spawn(client_gen, name="client")
    sp = w.sim.spawn(server_gen, name="server")
    w.run()
    assert cp.triggered and sp.triggered
    return cp.value, sp.value


def echo_server(kernel, nbytes):
    def server():
        sys = kernel.thread()
        fd = yield from sys.socket()
        yield from sys.bind(fd, 80)
        yield from sys.listen(fd)
        conn_fd = yield from sys.accept(fd)
        data = b""
        while len(data) < nbytes:
            data += yield from sys.recv(conn_fd)
        return data
    return server()


class TestSendv:
    def test_chunks_arrive_concatenated_in_order(self):
        w, ka, kb = make_kernel_pair()

        def client():
            sys = ka.thread()
            fd = yield from sys.socket()
            yield from sys.connect(fd, "10.0.0.2", 80)
            sent = yield from sys.sendv(fd, CHUNKS)
            return sent

        sent, received = run_pair(w, client(), echo_server(kb, TOTAL))
        assert sent == TOTAL
        assert received == b"".join(CHUNKS)

    def test_one_syscall_covers_the_whole_vector(self):
        w, ka, kb = make_kernel_pair()

        def client():
            sys = ka.thread()
            fd = yield from sys.socket()
            yield from sys.connect(fd, "10.0.0.2", 80)
            yield from sys.sendv(fd, CHUNKS)

        run_pair(w, client(), echo_server(kb, TOTAL))
        # socket, connect, sendv: the vector is one privilege crossing.
        assert w.tracer.get("client.kernel.syscalls") == 3
        assert w.tracer.get("client.kernel.sendv_calls") == 1
        assert (w.tracer.get("client.kernel.sendv_syscalls_saved")
                == len(CHUNKS) - 1)
        assert w.tracer.get("client.kernel.bytes_copied_tx") == TOTAL

    def test_single_chunk_saves_nothing(self):
        w, ka, kb = make_kernel_pair()

        def client():
            sys = ka.thread()
            fd = yield from sys.socket()
            yield from sys.connect(fd, "10.0.0.2", 80)
            yield from sys.sendv(fd, [b"solo"])

        run_pair(w, client(), echo_server(kb, 4))
        assert w.tracer.get("client.kernel.sendv_calls") == 1
        assert w.tracer.get("client.kernel.sendv_syscalls_saved") == 0

    def test_empty_vector_rejected(self):
        w, ka, kb = make_kernel_pair()

        def client():
            sys = ka.thread()
            fd = yield from sys.socket()
            yield from sys.connect(fd, "10.0.0.2", 80)
            with pytest.raises(KernelError):
                yield from sys.sendv(fd, [])
            yield from sys.send(fd, b"post")

        run_pair(w, client(), echo_server(kb, 4))

    def test_unconnected_socket_rejected(self):
        w, ka, _kb = make_kernel_pair()

        def client():
            sys = ka.thread()
            fd = yield from sys.socket()
            with pytest.raises(KernelError):
                yield from sys.sendv(fd, [b"x"])
            return True

        p = w.sim.spawn(client())
        w.run()
        assert p.value is True
