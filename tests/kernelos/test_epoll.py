"""Tests for kernel epoll: readiness, level triggering, the wake-up herd."""

from repro.kernelos.kernel import EWOULDBLOCK

from ..conftest import make_kernel_pair


def setup_server_with_clients(w, ka, kb, n_clients=1, port=80):
    """Spawn clients that connect and later send one message each.

    Returns (listen_fd_holder, client_processes).
    """
    def client(i):
        sys = ka.thread(ka.host.cpus[min(i, len(ka.host.cpus) - 1)])
        fd = yield from sys.socket()
        yield from sys.connect(fd, "10.0.0.2", port)
        yield w.sim.timeout(1_000_000 + i * 100_000)
        yield from sys.send(fd, b"msg-%d" % i)
        yield w.sim.timeout(50_000_000)  # hold the connection open

    return [w.sim.spawn(client(i), name="client%d" % i) for i in range(n_clients)]


class TestEpollBasics:
    def test_epoll_reports_readable_connection(self):
        w, ka, kb = make_kernel_pair()
        setup_server_with_clients(w, ka, kb, 1)
        result = {}

        def server():
            sys = kb.thread()
            lfd = yield from sys.socket()
            yield from sys.bind(lfd, 80)
            yield from sys.listen(lfd)
            conn_fd = yield from sys.accept(lfd)
            epfd = yield from sys.epoll_create()
            yield from sys.epoll_ctl_add(epfd, conn_fd)
            ready = yield from sys.epoll_wait(epfd)
            assert ready == [conn_fd]
            data = yield from sys.recv_nb(conn_fd)
            result["data"] = data

        w.sim.spawn(server(), name="server")
        w.run()
        assert result["data"] == b"msg-0"

    def test_epoll_on_listener_reports_accept_ready(self):
        w, ka, kb = make_kernel_pair()
        setup_server_with_clients(w, ka, kb, 1)
        result = {}

        def server():
            sys = kb.thread()
            lfd = yield from sys.socket()
            yield from sys.bind(lfd, 80)
            yield from sys.listen(lfd)
            epfd = yield from sys.epoll_create()
            yield from sys.epoll_ctl_add(epfd, lfd)
            ready = yield from sys.epoll_wait(epfd)
            result["ready"] = ready
            conn = yield from sys.accept_nb(lfd)
            result["accepted"] = conn is not EWOULDBLOCK

        w.sim.spawn(server(), name="server")
        w.run()
        assert result["ready"]
        assert result["accepted"]

    def test_epoll_del_stops_reports(self):
        w, ka, kb = make_kernel_pair()
        setup_server_with_clients(w, ka, kb, 1)
        result = {}

        def server():
            sys = kb.thread()
            lfd = yield from sys.socket()
            yield from sys.bind(lfd, 80)
            yield from sys.listen(lfd)
            conn_fd = yield from sys.accept(lfd)
            epfd = yield from sys.epoll_create()
            yield from sys.epoll_ctl_add(epfd, conn_fd)
            yield from sys.epoll_ctl_del(epfd, conn_fd)
            # Data will arrive, but nothing is watched any more: wait a
            # bounded sim time then bail out via a plain recv.
            yield w.sim.timeout(5_000_000)
            data = yield from sys.recv_nb(conn_fd)
            result["data"] = data

        w.sim.spawn(server(), name="server")
        w.run()
        assert result["data"] == b"msg-0"


class TestWakeupHerd:
    """The C4 mechanism test: N waiters, one event, how many wake?"""

    def _run_herd(self, n_workers):
        # Dedicated worker cores (core 0 stays the IRQ/softirq core) so
        # every woken worker re-scans at the same instant: the herd size
        # is then deterministic.
        w, ka, kb = make_kernel_pair(cores=n_workers + 1)
        setup_server_with_clients(w, ka, kb, 1)
        stats = {"wakeups": 0, "got_data": 0, "empty": 0}

        def server_main():
            sys = kb.thread()
            lfd = yield from sys.socket()
            yield from sys.bind(lfd, 80)
            yield from sys.listen(lfd)
            conn_fd = yield from sys.accept(lfd)
            epfd = yield from sys.epoll_create()
            yield from sys.epoll_ctl_add(epfd, conn_fd)
            for i in range(n_workers):
                core = kb.host.cpus[i + 1]
                w.sim.spawn(worker(kb.thread(core), epfd, conn_fd),
                            name="worker%d" % i)

        def worker(sys, epfd, conn_fd):
            ready = yield from sys.epoll_wait(epfd)
            stats["wakeups"] += 1
            if ready:
                data = yield from sys.recv_nb(conn_fd)
                if data is not EWOULDBLOCK and data:
                    stats["got_data"] += 1
                else:
                    stats["empty"] += 1

        w.sim.spawn(server_main(), name="server")
        w.run()
        return stats

    def test_single_worker_no_waste(self):
        stats = self._run_herd(1)
        assert stats == {"wakeups": 1, "got_data": 1, "empty": 0}

    def test_herd_wakes_everyone_but_one_wins(self):
        stats = self._run_herd(4)
        # Level-triggered epoll wakes all four; exactly one gets the data.
        assert stats["wakeups"] == 4
        assert stats["got_data"] == 1
        assert stats["empty"] == 3
