"""Tests for kernel TCP/UDP sockets: semantics and cost accounting."""

import pytest

from repro.kernelos.kernel import EWOULDBLOCK, KernelError

from ..conftest import make_kernel_pair


def run_pair(w, client_gen, server_gen):
    cp = w.sim.spawn(client_gen, name="client")
    sp = w.sim.spawn(server_gen, name="server")
    w.run()
    assert cp.triggered and sp.triggered
    return cp.value, sp.value


class TestTcpSockets:
    def test_connect_accept_send_recv(self):
        w, ka, kb = make_kernel_pair()

        def server():
            sys = kb.thread()
            fd = yield from sys.socket()
            yield from sys.bind(fd, 80)
            yield from sys.listen(fd)
            conn_fd = yield from sys.accept(fd)
            data = yield from sys.recv(conn_fd)
            yield from sys.send(conn_fd, data.upper())
            return data

        def client():
            sys = ka.thread()
            fd = yield from sys.socket()
            yield from sys.connect(fd, "10.0.0.2", 80)
            yield from sys.send(fd, b"hello kernel")
            reply = yield from sys.recv(fd)
            return reply

        creply, sdata = run_pair(w, client(), server())
        assert sdata == b"hello kernel"
        assert creply == b"HELLO KERNEL"

    def test_each_operation_costs_a_syscall(self):
        w, ka, kb = make_kernel_pair()

        def server():
            sys = kb.thread()
            fd = yield from sys.socket()
            yield from sys.bind(fd, 80)
            yield from sys.listen(fd)
            conn_fd = yield from sys.accept(fd)
            yield from sys.recv(conn_fd)

        def client():
            sys = ka.thread()
            fd = yield from sys.socket()
            yield from sys.connect(fd, "10.0.0.2", 80)
            yield from sys.send(fd, b"x")

        run_pair(w, client(), server())
        # client: socket, connect, send = 3 syscalls
        assert w.tracer.get("client.kernel.syscalls") == 3
        # server: socket, bind, listen, accept, recv = 5
        assert w.tracer.get("server.kernel.syscalls") == 5

    def test_send_and_recv_copy_bytes(self):
        w, ka, kb = make_kernel_pair()
        payload = b"c" * 4096

        def server():
            sys = kb.thread()
            fd = yield from sys.socket()
            yield from sys.bind(fd, 80)
            yield from sys.listen(fd)
            conn_fd = yield from sys.accept(fd)
            return (yield from sys.recv(conn_fd, 100000))

        def client():
            sys = ka.thread()
            fd = yield from sys.socket()
            yield from sys.connect(fd, "10.0.0.2", 80)
            yield from sys.send(fd, payload)

        _, received = run_pair(w, client(), server())
        assert received == payload
        assert w.tracer.get("client.kernel.bytes_copied_tx") == 4096
        assert w.tracer.get("server.kernel.bytes_copied_rx") == 4096

    def test_recv_returns_empty_on_peer_close(self):
        w, ka, kb = make_kernel_pair()

        def server():
            sys = kb.thread()
            fd = yield from sys.socket()
            yield from sys.bind(fd, 80)
            yield from sys.listen(fd)
            conn_fd = yield from sys.accept(fd)
            first = yield from sys.recv(conn_fd)
            second = yield from sys.recv(conn_fd)
            return first, second

        def client():
            sys = ka.thread()
            fd = yield from sys.socket()
            yield from sys.connect(fd, "10.0.0.2", 80)
            yield from sys.send(fd, b"bye")
            yield from sys.close(fd)

        _, (first, second) = run_pair(w, client(), server())
        assert first == b"bye"
        assert second == b""

    def test_recv_nb_wouldblock_when_no_data(self):
        w, ka, kb = make_kernel_pair()

        def server():
            sys = kb.thread()
            fd = yield from sys.socket()
            yield from sys.bind(fd, 80)
            yield from sys.listen(fd)
            conn_fd = yield from sys.accept(fd)
            return (yield from sys.recv_nb(conn_fd))

        def client():
            sys = ka.thread()
            fd = yield from sys.socket()
            yield from sys.connect(fd, "10.0.0.2", 80)
            yield w.sim.timeout(10_000_000)  # keep alive, send nothing

        _, result = run_pair(w, client(), server())
        assert result is EWOULDBLOCK
        assert w.tracer.get("server.kernel.ewouldblock") == 1

    def test_bad_fd_raises(self):
        w, ka, _kb = make_kernel_pair()

        def proc():
            sys = ka.thread()
            with pytest.raises(KernelError):
                yield from sys.send(99, b"x")
            return "checked"

        p = w.sim.spawn(proc())
        w.run()
        assert p.value == "checked"

    def test_listen_before_bind_rejected(self):
        w, ka, _kb = make_kernel_pair()

        def proc():
            sys = ka.thread()
            fd = yield from sys.socket()
            with pytest.raises(KernelError):
                yield from sys.listen(fd)
            return "checked"

        p = w.sim.spawn(proc())
        w.run()
        assert p.value == "checked"

    def test_kernel_rtt_includes_interrupts(self):
        w, ka, kb = make_kernel_pair()

        def server():
            sys = kb.thread()
            fd = yield from sys.socket()
            yield from sys.bind(fd, 80)
            yield from sys.listen(fd)
            conn_fd = yield from sys.accept(fd)
            data = yield from sys.recv(conn_fd)
            yield from sys.send(conn_fd, data)

        def client():
            sys = ka.thread()
            fd = yield from sys.socket()
            yield from sys.connect(fd, "10.0.0.2", 80)
            start = w.sim.now
            yield from sys.send(fd, b"ping")
            yield from sys.recv(fd)
            return w.sim.now - start

        rtt, _ = run_pair(w, client(), server())
        # Kernel-path echo RTT lands in the tens of microseconds.
        assert rtt > 15_000
        assert w.tracer.get("server.eth0.rx_interrupts") > 0


class TestUdpSockets:
    def test_udp_echo(self):
        w, ka, kb = make_kernel_pair()

        def server():
            sys = kb.thread()
            fd = yield from sys.socket_udp()
            yield from sys.bind_udp(fd, 53)
            data, ip, port = yield from sys.recvfrom(fd)
            yield from sys.sendto(fd, data[::-1], ip, port)
            return data

        def client():
            sys = ka.thread()
            fd = yield from sys.socket_udp()
            yield from sys.bind_udp(fd, 5353)
            yield from sys.sendto(fd, b"stressed", "10.0.0.2", 53)
            data, _ip, _port = yield from sys.recvfrom(fd)
            return data

        creply, sdata = run_pair(w, client(), server())
        assert sdata == b"stressed"
        assert creply == b"desserts"
