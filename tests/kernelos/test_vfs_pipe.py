"""Tests for the kernel VFS (files, page cache, fsync) and pipes."""

import pytest

from repro.hw.nvme import NvmeDevice
from repro.kernelos.kernel import Kernel, KernelError
from repro.kernelos.vfs import Vfs

from ..conftest import World


def make_fs_host():
    w = World()
    host = w.add_host("h")
    kernel = Kernel(host, w.fabric, "02:00:00:00:02:01", "10.0.0.9")
    nvme = NvmeDevice(host, name="h.nvme0")
    host.nvme = nvme
    vfs = Vfs(kernel, nvme)
    return w, kernel, vfs, nvme


def run(w, gen):
    p = w.sim.spawn(gen)
    w.run()
    return p.value


class TestVfs:
    def test_create_write_read_roundtrip(self):
        w, kernel, _vfs, _nvme = make_fs_host()

        def proc():
            sys = kernel.thread()
            fd = yield from sys.creat("/data/log")
            yield from sys.write(fd, b"persistent bytes")
            yield from sys.lseek(fd, 0)
            return (yield from sys.read(fd, 100))

        assert run(w, proc()) == b"persistent bytes"

    def test_open_missing_file_raises(self):
        w, kernel, _vfs, _nvme = make_fs_host()

        def proc():
            sys = kernel.thread()
            with pytest.raises(KernelError):
                yield from sys.open("/missing")
            return "checked"

        assert run(w, proc()) == "checked"

    def test_create_duplicate_raises(self):
        w, kernel, _vfs, _nvme = make_fs_host()

        def proc():
            sys = kernel.thread()
            yield from sys.creat("/x")
            with pytest.raises(KernelError):
                yield from sys.creat("/x")
            return "checked"

        assert run(w, proc()) == "checked"

    def test_write_is_cached_until_fsync(self):
        w, kernel, vfs, nvme = make_fs_host()

        def proc():
            sys = kernel.thread()
            fd = yield from sys.creat("/f")
            yield from sys.write(fd, b"d" * 8192)
            assert vfs.dirty_blocks == 2
            assert nvme.tracer.get("h.nvme0.writes") == 0
            flushed = yield from sys.fsync(fd)
            return flushed

        assert run(w, proc()) == 2
        assert nvme.tracer.get("h.nvme0.writes") == 2
        assert nvme.flushes == 1

    def test_data_durable_on_device_after_fsync(self):
        w, kernel, vfs, nvme = make_fs_host()

        def proc():
            sys = kernel.thread()
            fd = yield from sys.creat("/f")
            yield from sys.write(fd, b"A" * 4096)
            yield from sys.fsync(fd)

        run(w, proc())
        inode = vfs.lookup("/f")
        lba = inode.blocks[0]
        assert nvme.peek_block(lba) == b"A" * 4096

    def test_reread_after_cache_drop_hits_device(self):
        w, kernel, vfs, nvme = make_fs_host()

        def write_phase():
            sys = kernel.thread()
            fd = yield from sys.creat("/f")
            yield from sys.write(fd, b"B" * 4096)
            yield from sys.fsync(fd)

        run(w, write_phase())
        vfs._cache.clear()  # simulate memory pressure eviction

        def read_phase():
            sys = kernel.thread()
            fd = yield from sys.open("/f")
            return (yield from sys.read(fd, 4096))

        assert run(w, read_phase()) == b"B" * 4096
        assert w.tracer.get("h.kernel.page_cache_misses") >= 1
        assert nvme.tracer.get("h.nvme0.reads") >= 1

    def test_read_past_eof_returns_empty(self):
        w, kernel, _vfs, _nvme = make_fs_host()

        def proc():
            sys = kernel.thread()
            fd = yield from sys.creat("/f")
            yield from sys.write(fd, b"abc")
            return (yield from sys.read(fd, 10))

        assert run(w, proc()) == b""

    def test_unaligned_write_spanning_blocks(self):
        w, kernel, _vfs, _nvme = make_fs_host()

        def proc():
            sys = kernel.thread()
            fd = yield from sys.creat("/f")
            yield from sys.lseek(fd, 4090)
            yield from sys.write(fd, b"0123456789")
            yield from sys.lseek(fd, 4090)
            return (yield from sys.read(fd, 10))

        assert run(w, proc()) == b"0123456789"

    def test_file_io_charges_copies_and_syscalls(self):
        w, kernel, _vfs, _nvme = make_fs_host()

        def proc():
            sys = kernel.thread()
            fd = yield from sys.creat("/f")
            yield from sys.write(fd, b"z" * 4096)

        run(w, proc())
        assert w.tracer.get("h.kernel.bytes_copied_tx") == 4096
        assert w.tracer.get("h.kernel.syscalls") == 2


class TestPipes:
    def test_pipe_write_then_read(self):
        w, kernel, _vfs, _nvme = make_fs_host()

        def proc():
            sys = kernel.thread()
            rfd, wfd = yield from sys.pipe()
            yield from sys.write(wfd, b"through the pipe")
            return (yield from sys.read(rfd, 100))

        assert run(w, proc()) == b"through the pipe"

    def test_pipe_blocks_reader_until_data(self):
        w, kernel, _vfs, _nvme = make_fs_host()
        order = []

        def reader(sys, rfd):
            data = yield from sys.read(rfd, 10)
            order.append(("read", data, w.sim.now))

        def writer(sys, wfd):
            yield w.sim.timeout(500_000)
            order.append(("write", w.sim.now))
            yield from sys.write(wfd, b"late")

        def main():
            sys = kernel.thread()
            rfd, wfd = yield from sys.pipe()
            w.sim.spawn(reader(kernel.thread(kernel.host.cpus[1]), rfd))
            w.sim.spawn(writer(kernel.thread(kernel.host.cpus[2]), wfd))

        w.sim.spawn(main())
        w.run()
        assert order[0][0] == "write"
        assert order[1][1] == b"late"

    def test_pipe_backpressure_blocks_writer(self):
        w, kernel, _vfs, _nvme = make_fs_host()
        from repro.kernelos.pipe import PIPE_CAPACITY
        progress = []

        def writer(sys, wfd):
            yield from sys.write(wfd, b"x" * (PIPE_CAPACITY + 100))
            progress.append(("writer-done", w.sim.now))

        def reader(sys, rfd):
            yield w.sim.timeout(1_000_000)
            total = 0
            while total < PIPE_CAPACITY + 100:
                data = yield from sys.read(rfd, 8192)
                total += len(data)
            progress.append(("reader-done", w.sim.now))

        def main():
            sys = kernel.thread()
            rfd, wfd = yield from sys.pipe()
            w.sim.spawn(writer(kernel.thread(kernel.host.cpus[1]), wfd))
            w.sim.spawn(reader(kernel.thread(kernel.host.cpus[2]), rfd))

        w.sim.spawn(main())
        w.run()
        names = [p[0] for p in progress]
        assert "writer-done" in names and "reader-done" in names

    def test_read_from_closed_empty_pipe_returns_eof(self):
        w, kernel, _vfs, _nvme = make_fs_host()

        def proc():
            sys = kernel.thread()
            rfd, wfd = yield from sys.pipe()
            yield from sys.write(wfd, b"tail")
            yield from sys.pipe_close(wfd)
            first = yield from sys.read(rfd, 100)
            second = yield from sys.read(rfd, 100)
            return first, second

        first, second = run(w, proc())
        assert first == b"tail"
        assert second == b""

    def test_write_to_closed_read_end_raises(self):
        w, kernel, _vfs, _nvme = make_fs_host()

        def proc():
            sys = kernel.thread()
            rfd, wfd = yield from sys.pipe()
            yield from sys.pipe_close(rfd)
            with pytest.raises(KernelError):
                yield from sys.write(wfd, b"no listener")
            return "checked"

        assert run(w, proc()) == "checked"
