"""The open-loop load generator: determinism, overload shape, churn.

An open-loop generator is only useful if (a) the same seed offers the
same traffic, (b) it actually exposes overload - goodput plateaus at
capacity while tail latency explodes - and (c) the adversarial knobs
(churn, stalls, split writes) run without corrupting a single stream.
Each test here pins one of those properties with short windows so the
suite stays fast.
"""

from repro.bench.loadgen import (LoadConfig, arrival_times, run_open_loop,
                                 slo_sweep)
from repro.sim.rand import Rng


def small_cfg(**overrides) -> LoadConfig:
    base = dict(rate_ops_per_s=40_000.0, duration_ms=5, n_connections=2,
                n_keys=16, value_size=32)
    base.update(overrides)
    return LoadConfig(**base)


class TestArrivalTimes:
    def test_seeded_and_sorted(self):
        a = arrival_times(Rng(3).fork(1), 100_000.0, 2_000_000)
        b = arrival_times(Rng(3).fork(1), 100_000.0, 2_000_000)
        assert a == b
        assert a == sorted(a)
        assert all(0 <= t < 2_000_000 for t in a)

    def test_rate_sets_the_count(self):
        # 100k ops/s over 10 ms -> ~1000 arrivals (Poisson, so roughly).
        times = arrival_times(Rng(5).fork(1), 100_000.0, 10_000_000)
        assert 800 < len(times) < 1200

    def test_zero_rate_is_empty(self):
        assert arrival_times(Rng(1).fork(1), 0.0, 10_000_000) == []


class TestSeedDeterminism:
    def test_same_seed_same_row(self):
        r1 = run_open_loop(small_cfg(), seed=11)
        r2 = run_open_loop(small_cfg(), seed=11)
        assert r1 == r2

    def test_different_seed_different_traffic(self):
        r1 = run_open_loop(small_cfg(), seed=11)
        r2 = run_open_loop(small_cfg(), seed=12)
        assert r1 != r2


class TestOpenLoopRuns:
    def test_resp_run_is_clean(self):
        row = run_open_loop(small_cfg(), seed=7)
        assert row["completed"] > 0
        assert row["server_decode_errors"] == 0
        assert row["client_decode_errors"] == 0
        assert row["error_replies"] == 0
        assert row["qtoken_identity_ok"] is True
        assert row["p50_ns"] <= row["p99_ns"] <= row["p999_ns"]

    def test_memcached_posix_run_is_clean(self):
        row = run_open_loop(small_cfg(protocol="memcached"), seed=7,
                            libos_kind="posix")
        assert row["completed"] > 0
        assert row["server_decode_errors"] == 0
        assert row["client_decode_errors"] == 0
        assert row["qtoken_identity_ok"] is True

    def test_churn_stall_and_chunking_survive(self):
        # All three adversarial knobs at once: reconnect every 40
        # requests, one reader stalls mid-run, every push split into
        # 7-byte chunks.  Zero tolerance for stream corruption.
        row = run_open_loop(
            small_cfg(duration_ms=8, churn_every=40, stall_conns=1,
                      chunk_bytes=7),
            seed=9)
        assert row["reconnects"] > 0
        assert row["stalls"] == 1
        assert row["server_decode_errors"] == 0
        assert row["client_decode_errors"] == 0
        assert row["error_replies"] == 0
        assert row["qtoken_identity_ok"] is True

    def test_sharded_run_is_clean(self):
        row = run_open_loop(small_cfg(rate_ops_per_s=60_000.0), seed=7,
                            cores=2)
        assert row["cores"] == 2
        assert row["completed"] > 0
        assert row["server_decode_errors"] == 0
        assert row["qtoken_identity_ok"] is True


class TestOverloadShape:
    def test_goodput_plateaus_and_tail_explodes(self):
        # dpdk single core saturates around 240k ops/s.  Sweeping to
        # 130% must show the open-loop signature: goodput stops
        # tracking offered load while p99.9 keeps climbing.
        rows = slo_sweep(
            LoadConfig(duration_ms=15, n_connections=4, n_keys=32),
            load_fractions=[0.3, 0.7, 1.0, 1.3],
            base_rate_ops_per_s=240_000.0, seed=7)
        by_load = {row["load_fraction"]: row for row in rows}

        # Below the knee goodput tracks offered load closely...
        assert by_load[0.3]["goodput_ops_per_s"] > 0.8 * 0.3 * 240_000
        # ...past saturation it plateaus: 30% more offered load buys
        # almost nothing.
        overload_gain = (by_load[1.3]["goodput_ops_per_s"]
                         / by_load[1.0]["goodput_ops_per_s"])
        assert overload_gain < 1.15
        assert by_load[1.3]["goodput_ops_per_s"] \
            < 0.95 * 1.3 * 240_000
        # The tail is monotone across the sweep and explodes under
        # overload (queueing delay, not service time).
        p999 = [row["p999_ns"] for row in rows]
        assert p999 == sorted(p999)
        assert by_load[1.3]["p999_ns"] > 10 * by_load[0.3]["p999_ns"]
        # Overload must not manufacture protocol errors.
        assert all(row["server_decode_errors"] == 0 for row in rows)
        assert all(row["error_replies"] == 0 for row in rows)
