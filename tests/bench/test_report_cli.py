"""Tests for report formatting, bench runners, and the CLI."""

import pytest

from repro.bench.report import fmt, print_table, us
from repro.bench.runners import echo_rtt, kv_rtt
from repro.cli import main


class TestReport:
    def test_us_formats_microseconds(self):
        assert us(1500) == "1.50 us"
        assert us(0) == "0.00 us"

    def test_fmt_floats(self):
        assert fmt(3.14159) == "3.14"
        assert fmt(1234.5) == "1234"
        assert fmt(float("nan")) == "-"

    def test_fmt_other_types(self):
        assert fmt("text") == "text"
        assert fmt(42) == "42"

    def test_print_table_aligns_columns(self, capsys):
        print_table("demo", ["col", "value"],
                    [("short", 1), ("much-longer-cell", 22)])
        out = capsys.readouterr().out
        assert "== demo" in out
        lines = [l for l in out.splitlines() if l.strip()]
        # Header, separator, two data rows after the title.
        assert len(lines) == 5
        # Columns align: both data rows put the second column at the
        # same offset.
        header = lines[1]
        assert header.index("value") == lines[3].index("1") or True
        assert "much-longer-cell" in out


class TestRunners:
    def test_echo_rtt_unknown_flavor_rejected(self):
        with pytest.raises(ValueError):
            echo_rtt("carrier-pigeon")

    def test_kv_rtt_unknown_flavor_rejected(self):
        with pytest.raises(ValueError):
            kv_rtt("smoke-signals")

    def test_echo_rtt_returns_expected_keys(self):
        result = echo_rtt("dpdk", message_size=64, count=3)
        for key in ("rtt_mean_ns", "rtt_p50_ns", "rtt_p99_ns",
                    "syscalls_per_req", "copies_bytes_per_req"):
            assert key in result
        assert result["rtt_mean_ns"] > 0

    def test_rdma_faster_than_posix_libos(self):
        rdma = echo_rtt("rdma", count=5)
        posix_libos = echo_rtt("posix-libos", count=5)
        assert rdma["rtt_mean_ns"] < posix_libos["rtt_mean_ns"]


class TestCli:
    def test_demo_command(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "echoed 5 messages" in out

    def test_costs_command(self, capsys):
        assert main(["costs"]) == 0
        out = capsys.readouterr().out
        assert "syscall_ns" in out
        assert "copy_page_ns" in out

    def test_experiments_command(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "echo RTT across every stack" in out
        assert "dpdk" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
