"""Tests for the bench validator's v2 schema and trajectory mode."""

import copy
import json

import pytest

from repro.bench.runners import PER_OP_BUDGET_NS, kv_scaling_document
from repro.cli import main
from tools.check_bench import check_document, check_payload
from tools.check_bench import main as check_main


@pytest.fixture(scope="module")
def doc():
    return kv_scaling_document(core_counts=(1, 2), n_ops=30, seed=7)


class TestSchemaV2:
    def test_generated_document_is_valid(self, doc):
        assert check_document(doc) == []
        assert doc["schema_version"] == 2
        assert doc["params"]["per_op_budget_ns"] == PER_OP_BUDGET_NS

    def test_v2_requires_budget_param(self, doc):
        broken = copy.deepcopy(doc)
        del broken["params"]["per_op_budget_ns"]
        assert any("per_op_budget_ns" in e for e in check_document(broken))

    def test_v2_requires_cost_columns(self, doc):
        broken = copy.deepcopy(doc)
        del broken["rows"][0]["per_op_server_cpu_ns"]
        assert any("missing keys" in e for e in check_document(broken))

    def test_cost_budget_regression_flagged(self, doc):
        broken = copy.deepcopy(doc)
        row = broken["rows"][1]
        limit = (broken["params"]["per_op_budget_ns"]
                 + broken["params"]["per_op_setup_allowance_ns"]
                 * row["cores"] / row["requests"])
        row["per_op_server_cpu_ns"] = limit + 1
        errors = check_document(broken)
        assert any("exceeds" in e and "budget" in e for e in errors)

    def test_setup_allowance_forgives_short_runs(self, doc):
        # A cold-start-heavy row stays valid as long as the overage is
        # within the amortized per-shard allowance.
        tweaked = copy.deepcopy(doc)
        row = tweaked["rows"][0]
        row["per_op_server_cpu_ns"] = (
            tweaked["params"]["per_op_budget_ns"]
            + tweaked["params"]["per_op_setup_allowance_ns"]
            * row["cores"] / row["requests"] - 1)
        assert check_document(tweaked) == []

    def test_nonpositive_budget_rejected(self, doc):
        broken = copy.deepcopy(doc)
        broken["params"]["per_op_budget_ns"] = 0
        assert any("positive" in e for e in check_document(broken))

    def test_negative_setup_allowance_rejected(self, doc):
        broken = copy.deepcopy(doc)
        broken["params"]["per_op_setup_allowance_ns"] = -5
        assert any("non-negative" in e for e in check_document(broken))

    def test_v1_documents_still_accepted(self, doc):
        old = copy.deepcopy(doc)
        old["schema_version"] = 1
        for row in old["rows"]:
            for key in ("per_op_server_cpu_ns", "doorbells",
                        "doorbells_saved", "requests_per_wakeup"):
                del row[key]
        del old["params"]["per_op_budget_ns"]
        del old["params"]["per_op_setup_allowance_ns"]
        assert check_document(old) == []

    def test_unknown_version_rejected(self, doc):
        broken = copy.deepcopy(doc)
        broken["schema_version"] = 3
        assert any("schema_version" in e for e in check_document(broken))


class TestTrajectories:
    def test_list_of_valid_documents_passes(self, doc):
        assert check_payload([doc, copy.deepcopy(doc)]) == []

    def test_errors_carry_the_document_index(self, doc):
        broken = copy.deepcopy(doc)
        broken["rows"][0]["wasted_wakeups"] = 3
        errors = check_payload([doc, broken])
        assert errors
        assert all(e.startswith("doc[1]: ") for e in errors)

    def test_empty_trajectory_rejected(self):
        assert check_payload([]) == ["trajectory is empty"]

    def test_single_document_payload_unchanged(self, doc):
        assert check_payload(doc) == check_document(doc)


class TestCliAppendMode:
    def _run(self, path, extra=()):
        assert main(["bench", "kv-scaling", "--cores", "1,2",
                     "--ops", "30", "--seed", "7",
                     "-o", str(path)] + list(extra)) == 0

    def test_append_builds_a_trajectory(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        self._run(out)
        first = json.loads(out.read_text())
        assert isinstance(first, dict)
        self._run(out, ["--append"])
        traj = json.loads(out.read_text())
        assert isinstance(traj, list) and len(traj) == 2
        self._run(out, ["--append"])
        traj = json.loads(out.read_text())
        assert len(traj) == 3
        assert check_payload(traj) == []
        capsys.readouterr()

    def test_without_append_overwrites(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        self._run(out)
        self._run(out)
        assert isinstance(json.loads(out.read_text()), dict)
        capsys.readouterr()

    def test_checker_cli_accepts_trajectory_file(self, tmp_path, capsys,
                                                 doc):
        out = tmp_path / "traj.json"
        out.write_text(json.dumps([doc, doc]))
        assert check_main([str(out)]) == 0
        assert "2 documents" in capsys.readouterr().out

    def test_checker_cli_rejects_bad_file(self, tmp_path, capsys, doc):
        broken = copy.deepcopy(doc)
        broken["rows"][0]["cross_shard_wakeups"] = 1
        out = tmp_path / "bad.json"
        out.write_text(json.dumps(broken))
        assert check_main([str(out)]) == 1
        assert "cross-shard" in capsys.readouterr().err
