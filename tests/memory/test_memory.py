"""Tests for buffers and the Demikernel memory manager."""

import pytest

from repro.hw.iommu import IommuFault
from repro.memory.buffer import Buffer, BufferError

from ..conftest import World


class TestBuffer:
    def test_write_read_roundtrip(self):
        buf = Buffer(0x1000, 64)
        buf.write(8, b"abc")
        assert buf.read(8, 3) == b"abc"

    def test_read_defaults_to_rest_of_buffer(self):
        buf = Buffer(0x1000, 8).fill(b"12345678")
        assert buf.read(4) == b"5678"

    def test_out_of_range_write_rejected(self):
        buf = Buffer(0x1000, 16)
        with pytest.raises(BufferError):
            buf.write(10, b"0123456789")

    def test_out_of_range_read_rejected(self):
        buf = Buffer(0x1000, 16)
        with pytest.raises(BufferError):
            buf.read(8, 16)

    def test_zero_capacity_rejected(self):
        with pytest.raises(BufferError):
            Buffer(0x1000, 0)

    def test_hold_release_refcount(self):
        buf = Buffer(0x1000, 16)
        buf.hold()
        buf.hold()
        assert buf.device_refs == 2
        buf.release()
        buf.release()
        assert not buf.in_use_by_device

    def test_release_without_hold_rejected(self):
        buf = Buffer(0x1000, 16)
        with pytest.raises(BufferError):
            buf.release()

    def test_use_after_deallocate_rejected(self):
        buf = Buffer(0x1000, 16)
        buf.deallocated = True
        with pytest.raises(BufferError):
            buf.read(0, 1)
        with pytest.raises(BufferError):
            buf.write(0, b"x")


class TestMemoryManagerAllocation:
    def test_alloc_positive_only(self, world):
        host = world.add_host("h")
        with pytest.raises(BufferError):
            host.mm.alloc(0)

    def test_alloc_returns_distinct_ranges(self, world):
        host = world.add_host("h")
        a = host.mm.alloc(100)
        b = host.mm.alloc(100)
        assert a.addr + a.capacity <= b.addr or b.addr + b.capacity <= a.addr

    def test_large_alloc_gets_its_own_region(self, world):
        host = world.add_host("h")
        big = host.mm.alloc(8 * 1024 * 1024)
        assert big.capacity == 8 * 1024 * 1024
        assert big.region.size >= big.capacity

    def test_live_accounting(self, world):
        host = world.add_host("h")
        buf = host.mm.alloc(128)
        assert host.mm.live_buffer_count == 1
        assert host.mm.live_bytes == 128
        host.mm.free(buf)
        assert host.mm.live_buffer_count == 0
        assert host.mm.live_bytes == 0

    def test_double_free_rejected(self, world):
        host = world.add_host("h")
        buf = host.mm.alloc(16)
        host.mm.free(buf)
        with pytest.raises(BufferError):
            host.mm.free(buf)

    def test_region_reclaimed_when_empty(self, world):
        host = world.add_host("h")
        a = host.mm.alloc(64)
        b = host.mm.alloc(64)
        region = a.region
        used_before = region.used
        host.mm.free(a)
        host.mm.free(b)
        assert region.used == 0
        assert used_before > 0


class TestTransparentRegistration:
    def test_new_allocations_already_registered(self, world):
        host = world.add_host("h")
        nic = world.add_dpdk(host)
        buf = host.mm.alloc(256)
        nic.iommu.translate(buf.addr, buf.capacity)  # must not fault

    def test_regions_created_later_register_with_attached_devices(self, world):
        host = world.add_host("h")
        nic = world.add_dpdk(host)
        # Force a second region.
        big = host.mm.alloc(4 * 1024 * 1024)
        nic.iommu.translate(big.addr, 64)

    def test_registration_amortized_over_buffers(self, world):
        host = world.add_host("h")
        world.add_dpdk(host)
        before = world.tracer.get("mm.region_registrations")
        for _ in range(100):
            host.mm.alloc(512)
        after = world.tracer.get("mm.region_registrations")
        assert after - before <= 1  # at most one new region registered

    def test_explicit_mode_requires_per_buffer_registration(self):
        w = World()
        host = w.add_host("h")
        host.mm.transparent = False
        nic = w.add_dpdk(host)
        buf = host.mm.alloc(64)
        with pytest.raises(IommuFault):
            nic.iommu.translate(buf.addr, 64)
        host.mm.register_buffer(buf, nic)
        nic.iommu.translate(buf.addr, 64)


class TestFreeProtection:
    def test_free_while_device_holds_defers(self, world):
        host = world.add_host("h")
        buf = host.mm.alloc(64)
        buf.hold()  # device takes a DMA reference
        host.mm.free(buf)
        assert buf.freed
        assert not buf.deallocated  # protected
        assert world.tracer.get("mm.deferred_frees") == 1
        buf.release()
        assert buf.deallocated

    def test_free_without_device_refs_is_immediate(self, world):
        host = world.add_host("h")
        buf = host.mm.alloc(64)
        host.mm.free(buf)
        assert buf.deallocated

    def test_deferred_free_keeps_data_readable_for_device(self, world):
        host = world.add_host("h")
        buf = host.mm.alloc(64).fill(b"dma-payload")
        buf.hold()
        host.mm.free(buf)
        # The "device" can still read the bytes mid-DMA.
        assert buf.read(0, 11) == b"dma-payload"


class TestResolution:
    def test_resolve_finds_buffer_and_offset(self, world):
        host = world.add_host("h")
        buf = host.mm.alloc(256)
        found, offset = host.mm.resolve(buf.addr + 10, 16)
        assert found is buf
        assert offset == 10

    def test_resolve_unknown_address_faults(self, world):
        host = world.add_host("h")
        with pytest.raises(IommuFault):
            host.mm.resolve(0x1234, 4)

    def test_resolve_range_past_buffer_end_faults(self, world):
        host = world.add_host("h")
        buf = host.mm.alloc(32)
        with pytest.raises(IommuFault):
            host.mm.resolve(buf.addr + 16, 32)

    def test_read_write_mem_roundtrip(self, world):
        host = world.add_host("h")
        buf = host.mm.alloc(64)
        host.mm.write_mem(buf.addr + 4, b"onesided")
        assert host.mm.read_mem(buf.addr + 4, 8) == b"onesided"
        assert buf.read(4, 8) == b"onesided"

    def test_freed_buffer_not_resolvable(self, world):
        host = world.add_host("h")
        buf = host.mm.alloc(64)
        addr = buf.addr
        host.mm.free(buf)
        with pytest.raises(IommuFault):
            host.mm.resolve(addr, 4)
