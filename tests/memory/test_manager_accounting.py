"""Leak and double-free accounting on the memory manager.

The crash-reclaim invariant (``live_buffer_count == 0`` and
``registered_bytes() == 0`` after teardown) is only as trustworthy as
the accounting underneath it: these tests pin the free/deferred-free
state machine, the ``free_all``/``reclaim_regions`` teardown helpers,
and the resolve-miss fault path.
"""

import pytest

from repro.hw.iommu import IommuFault
from repro.memory.buffer import BufferError


class TestDoubleFree:
    def test_free_of_freed_buffer_raises(self, world):
        host = world.add_host("h")
        buf = host.mm.alloc(64)
        host.mm.free(buf)
        with pytest.raises(BufferError, match="double free"):
            host.mm.free(buf)

    def test_free_of_deferred_buffer_also_raises(self, world):
        # A buffer freed under an active DMA reference is *freed* even
        # though deallocation is deferred - a second free is still a bug.
        host = world.add_host("h")
        buf = host.mm.alloc(64)
        buf.hold()
        host.mm.free(buf)
        assert world.tracer.get("mm.deferred_frees") == 1
        with pytest.raises(BufferError, match="double free"):
            host.mm.free(buf)
        buf.release()  # the DMA completes; deallocation resolves now
        assert host.mm.live_buffer_count == 0


class TestRegisteredBytesAccounting:
    def test_mixed_alloc_register_free_returns_to_zero(self, world):
        host = world.add_host("h")
        nic = world.add_dpdk(host)
        small = [host.mm.alloc(256) for _ in range(4)]
        big = host.mm.alloc(4 * 1024 * 1024)  # forces a second region
        host.mm.register_buffer(small[0], nic)
        assert host.mm.registered_bytes() > 0
        for buf in small:
            host.mm.free(buf)
        host.mm.free(big)
        assert host.mm.live_buffer_count == 0
        assert host.mm.reclaim_regions() == 2
        assert host.mm.regions == []
        assert host.mm.registered_bytes() == 0
        assert nic.iommu.mapped_ranges == 0

    def test_reclaim_keeps_regions_with_live_buffers(self, world):
        host = world.add_host("h")
        keep = host.mm.alloc(128)
        host.mm.alloc(4 * 1024 * 1024)  # second region, freed below
        host.mm.free_all()
        # free_all freed both, so everything reclaims; now re-alloc and
        # check a live buffer pins its region through a reclaim pass.
        host.mm.reclaim_regions()
        live = host.mm.alloc(128)
        before = host.mm.registered_bytes()
        assert host.mm.reclaim_regions() == 0
        assert host.mm.registered_bytes() == before
        host.mm.free(live)
        assert keep.deallocated  # earlier teardown really freed it

    def test_reclaim_regions_is_idempotent(self, world):
        host = world.add_host("h")
        buf = host.mm.alloc(64)
        host.mm.free(buf)
        assert host.mm.reclaim_regions() == 1
        assert host.mm.reclaim_regions() == 0
        assert world.tracer.get("mm.regions_reclaimed") == 1


class TestFreeAll:
    def test_free_all_counts_only_newly_freed(self, world):
        host = world.add_host("h")
        bufs = [host.mm.alloc(64) for _ in range(5)]
        host.mm.free(bufs[0])
        assert host.mm.free_all() == 4
        assert host.mm.live_buffer_count == 0
        assert host.mm.free_all() == 0

    def test_free_all_defers_in_flight_dma(self, world):
        host = world.add_host("h")
        buf = host.mm.alloc(64)
        buf.hold()
        assert host.mm.free_all() == 1
        # The device still holds it: live until the reference drops.
        assert host.mm.live_buffer_count == 1
        assert host.mm.reclaim_regions() == 0
        buf.release()
        assert host.mm.live_buffer_count == 0
        assert host.mm.reclaim_regions() == 1


class TestResolveFaults:
    def test_resolve_miss_names_the_mm_and_counts(self, world):
        host = world.add_host("h")
        with pytest.raises(IommuFault) as excinfo:
            host.mm.resolve(0xdead0000, 16)
        assert excinfo.value.device == "h.mm"
        assert world.tracer.get("mm.faults") == 1

    def test_resolve_rejects_overhang_off_buffer_end(self, world):
        host = world.add_host("h")
        buf = host.mm.alloc(64)
        with pytest.raises(IommuFault):
            host.mm.resolve(buf.addr + 32, buf.capacity)
