"""Robustness tests for the engine: nesting, cascades, odd orderings."""

import pytest

from repro.sim.engine import (
    Interrupt,
    SimulationError,
    Simulator,
    any_of,
)


class TestNestedSpawning:
    def test_process_spawning_processes(self):
        sim = Simulator()
        results = []

        def grandchild(n):
            yield sim.timeout(n)
            results.append(("gc", n, sim.now))
            return n

        def child(n):
            value = yield sim.spawn(grandchild(n))
            results.append(("c", n, sim.now))
            return value * 2

        def root():
            total = 0
            for n in (5, 3):
                total += yield sim.spawn(child(n))
            return total

        p = sim.spawn(root())
        sim.run()
        assert p.value == 16  # (5 + 3) * 2

    def test_fan_out_fan_in(self):
        sim = Simulator()

        def worker(n):
            yield sim.timeout(n * 10)
            return n * n

        def root():
            workers = [sim.spawn(worker(n)) for n in range(5)]
            total = 0
            for w in workers:
                total += yield w
            return total

        p = sim.spawn(root())
        sim.run()
        assert p.value == sum(n * n for n in range(5))


class TestInterruptCascades:
    def test_interrupt_chain(self):
        """Interrupting a parent that is joined on a child."""
        sim = Simulator()
        events = []

        def child():
            try:
                yield sim.timeout(10**9)
            except Interrupt:
                events.append("child-interrupted")
                raise

        def parent():
            child_proc = sim.spawn(child())
            try:
                yield child_proc
            except Interrupt:
                events.append("parent-interrupted")
                child_proc.interrupt("cascade")
                try:
                    yield child_proc
                except Interrupt:
                    pass
            return events

        p = sim.spawn(parent())
        sim.call_in(100, p.interrupt, "stop")
        sim.run()
        assert "parent-interrupted" in p.value

    def test_double_interrupt_delivers_both(self):
        sim = Simulator()
        caught = []

        def stubborn():
            for _ in range(2):
                try:
                    yield sim.timeout(10**9)
                except Interrupt as intr:
                    caught.append(intr.cause)
            return caught

        p = sim.spawn(stubborn())
        sim.call_in(10, p.interrupt, "first")
        sim.call_in(20, p.interrupt, "second")
        sim.run()
        assert p.value == ["first", "second"]


class TestCompletionOrdering:
    def test_any_of_with_pretriggered_event(self):
        sim = Simulator()
        instant = sim.completion()
        instant.trigger("now")
        later = sim.timeout(1000, "later")

        def waiter():
            index, value = yield any_of(sim, [later, instant])
            return index, value

        p = sim.spawn(waiter())
        sim.run()
        assert p.value == (1, "now")

    def test_any_of_failure_propagates(self):
        sim = Simulator()
        doomed = sim.completion()

        def waiter():
            try:
                yield any_of(sim, [doomed, sim.timeout(10**6)])
            except RuntimeError as err:
                return "caught:%s" % err

        p = sim.spawn(waiter())
        sim.call_in(10, doomed.fail, RuntimeError("bad"))
        sim.run()
        assert p.value == "caught:bad"

    def test_callbacks_on_failed_completion(self):
        sim = Simulator()
        done = sim.completion()
        done.fail(ValueError("broken"))
        assert done.failed
        with pytest.raises(ValueError):
            _ = done.value

    def test_subscribe_after_trigger_runs_immediately(self):
        sim = Simulator()
        done = sim.completion()
        done.trigger(7)
        seen = []
        done.subscribe(lambda c: seen.append(c.value))
        assert seen == [7]


class TestSchedulingEdges:
    def test_cannot_schedule_into_the_past(self):
        sim = Simulator()
        sim.call_in(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim._schedule_at(50, lambda: None)

    def test_peek_reports_next_event(self):
        sim = Simulator()
        assert sim.peek() is None
        sim.call_in(250, lambda: None)
        assert sim.peek() == 250

    def test_processes_spawned_counter(self):
        sim = Simulator()

        def noop():
            yield sim.timeout(1)

        for _ in range(3):
            sim.spawn(noop())
        assert sim.processes_spawned == 3
