"""Tests for WaitQueue synchronization and the Tracer."""

from repro.sim.engine import Simulator
from repro.sim.sync import WaitQueue
from repro.sim.trace import LatencyStats, Tracer

import pytest


class TestWaitQueue:
    def test_pulse_wakes_all_waiters(self):
        sim = Simulator()
        wq = WaitQueue(sim)
        woken = []

        def waiter(name):
            value = yield wq.wait()
            woken.append((name, value))

        for name in ("a", "b", "c"):
            sim.spawn(waiter(name))
        sim.call_in(10, wq.pulse, "go")
        sim.run()
        assert sorted(woken) == [("a", "go"), ("b", "go"), ("c", "go")]

    def test_pulse_one_wakes_fifo(self):
        sim = Simulator()
        wq = WaitQueue(sim)
        woken = []

        def waiter(name):
            yield wq.wait()
            woken.append(name)

        for name in ("first", "second"):
            sim.spawn(waiter(name))
        sim.call_in(10, wq.pulse_one)
        sim.run()
        assert woken == ["first"]
        assert wq.waiting == 1

    def test_pulse_one_on_empty_returns_false(self):
        sim = Simulator()
        wq = WaitQueue(sim)
        assert wq.pulse_one() is False

    def test_pulse_returns_wake_count(self):
        sim = Simulator()
        wq = WaitQueue(sim)

        def waiter():
            yield wq.wait()

        sim.spawn(waiter())
        sim.spawn(waiter())
        sim.run()  # both block
        assert wq.pulse() == 2
        assert wq.pulses == 1

    def test_observers_run_on_every_pulse(self):
        sim = Simulator()
        wq = WaitQueue(sim)
        observed = []
        wq.subscribe(lambda: observed.append(sim.now))
        wq.pulse()
        wq.pulse()
        assert len(observed) == 2

    def test_unsubscribe_stops_observation(self):
        sim = Simulator()
        wq = WaitQueue(sim)
        observed = []
        callback = lambda: observed.append(1)
        wq.subscribe(callback)
        wq.pulse()
        wq.unsubscribe(callback)
        wq.pulse()
        assert len(observed) == 1

    def test_unsubscribe_unknown_is_noop(self):
        sim = Simulator()
        wq = WaitQueue(sim)
        wq.unsubscribe(lambda: None)  # must not raise


class TestTracer:
    def test_count_and_get(self):
        t = Tracer()
        t.count("x")
        t.count("x", 4)
        assert t.get("x") == 5
        assert t.get("missing") == 0

    def test_snapshot_diff(self):
        t = Tracer()
        t.count("a", 3)
        snap = t.snapshot()
        t.count("a", 2)
        t.count("b", 7)
        t.count("c", 0)
        assert t.diff(snap) == {"a": 2, "b": 7}

    def test_events_recorded_when_enabled(self):
        t = Tracer(keep_events=True)
        t.record(100, "frame_rx", {"len": 64})
        t.record(200, "frame_tx")
        assert t.events == [(100, "frame_rx", {"len": 64}),
                            (200, "frame_tx", None)]

    def test_events_dropped_when_disabled(self):
        t = Tracer(keep_events=False)
        t.record(1, "ignored")
        assert t.events == []

    def test_event_cap_respected(self):
        t = Tracer(keep_events=True, max_events=3)
        for i in range(10):
            t.record(i, "e")
        assert len(t.events) == 3

    def test_reset_clears_everything(self):
        t = Tracer(keep_events=True)
        t.count("x")
        t.record(1, "e")
        t.reset()
        assert t.get("x") == 0
        assert t.events == []


class TestCounterScope:
    def test_scope_prefixes_counts(self):
        t = Tracer()
        s = t.scope("host0")
        s.count("pushes")
        s.count("pushes", 2)
        assert t.get("host0.pushes") == 3
        assert s.get("pushes") == 3

    def test_scope_name_matches_inline_formatting(self):
        # The migration contract: scoped names are byte-identical to the
        # old '"%s.%s" % (prefix, leaf)' strings the goldens pin.
        t = Tracer()
        t.scope("catnip").count("tcp_tx_elements")
        assert "catnip.tcp_tx_elements" in t.counters

    def test_nested_scopes_join_with_dots(self):
        t = Tracer()
        kernel = t.scope("host0").scope("kernel")
        kernel.count("syscalls", 5)
        assert t.get("host0.kernel.syscalls") == 5

    def test_empty_prefix_is_passthrough(self):
        t = Tracer()
        t.scope("").count("bare")
        assert t.get("bare") == 1

    def test_scopes_share_the_tracer(self):
        t = Tracer()
        a, b = t.scope("h"), t.scope("h")
        a.count("x")
        b.count("x")
        assert t.get("h.x") == 2


class TestLatencyStats:
    def test_empty_stats_are_nan(self):
        import math
        stats = LatencyStats()
        assert math.isnan(stats.mean)
        assert math.isnan(stats.p50)

    def test_describe_mentions_name(self):
        stats = LatencyStats("rtt")
        stats.add(100)
        assert "rtt" in stats.describe()
        assert "n=1" in stats.describe()

    def test_describe_empty(self):
        assert "no samples" in LatencyStats("x").describe()

    def test_percentile_bounds_checked(self):
        stats = LatencyStats()
        stats.add(1)
        with pytest.raises(ValueError):
            stats.percentile(101)

    def test_stdev(self):
        stats = LatencyStats()
        stats.extend([2, 4, 4, 4, 5, 5, 7, 9])
        assert 2.0 <= stats.stdev() <= 2.3
        single = LatencyStats()
        single.add(5)
        assert single.stdev() == 0.0

    def test_summary_keys(self):
        stats = LatencyStats()
        stats.extend([1, 2, 3])
        summary = stats.summary()
        assert summary["count"] == 3
        assert summary["min"] == 1 and summary["max"] == 3
