"""Tests for the fabric's per-destination fault hook and the fault plan."""

import pytest

from repro.sim.costs import DEFAULT_COSTS
from repro.sim.engine import Simulator
from repro.sim.fabric import BROADCAST_ADDR, Fabric
from repro.sim.faults import (DEVICE_KINDS, NETWORK_KINDS, FaultEvent,
                              FaultInjector, FaultPlan)
from repro.sim.rand import Rng
from repro.sim.trace import Tracer


def make_fabric(drop_rate=0.0, seed=1):
    sim = Simulator()
    fabric = Fabric(sim, DEFAULT_COSTS, rng=Rng(seed), drop_rate=drop_rate)
    return sim, fabric


# ---------------------------------------------------------------------------
# Per-destination drops (satellite 1)
# ---------------------------------------------------------------------------

def test_port_dropped_frames_counter():
    sim, fabric = make_fabric(drop_rate=1.0)
    fabric.attach("a", lambda f: None)
    port_b = fabric.attach("b", lambda f: None)
    fabric.transmit("a", "b", "x", 100)
    sim.run()
    assert port_b.dropped_frames == 1
    assert fabric.tracer.get("fabric.dropped_frames") == 1


def test_broadcast_drop_decisions_are_per_destination():
    # With a fair coin per destination, a broadcast to many ports must
    # sometimes reach some ports and not others - the old implementation
    # made one decision for the whole broadcast.
    sim, fabric = make_fabric(drop_rate=0.5, seed=7)
    got = {name: [] for name in "abcdef"}
    for name in got:
        fabric.attach(name, (lambda n: (lambda f: got[n].append(f)))(name))
    for i in range(50):
        fabric.transmit("a", BROADCAST_ADDR, i, 60)
    sim.run()
    received = {name: len(frames) for name, frames in got.items()
                if name != "a"}
    # Not all destinations saw the same subset of the 50 broadcasts.
    assert len(set(received.values())) > 1
    total_dropped = sum(fabric.ports[n].dropped_frames for n in "bcdef")
    assert total_dropped == fabric.tracer.get("fabric.dropped_frames")
    assert sum(received.values()) + total_dropped == 50 * 5


def test_fault_filter_can_drop():
    sim, fabric = make_fabric()
    got = []
    fabric.attach("a", lambda f: None)
    port_b = fabric.attach("b", lambda f: got.append(f))
    fabric.fault_filter = lambda src, dst, frame, nbytes: []
    fabric.transmit("a", "b", "x", 100)
    sim.run()
    assert got == []
    assert port_b.dropped_frames == 1


def test_fault_filter_none_means_untouched():
    sim, fabric = make_fabric()
    got = []
    fabric.attach("a", lambda f: None)
    fabric.attach("b", lambda f: got.append((sim.now, f)))
    fabric.fault_filter = lambda src, dst, frame, nbytes: None
    fabric.transmit("a", "b", "x", 100)
    sim.run()
    assert got == [(DEFAULT_COSTS.wire_ns(100), "x")]


def test_fault_filter_duplicates_and_delays():
    sim, fabric = make_fabric()
    got = []
    fabric.attach("a", lambda f: None)
    fabric.attach("b", lambda f: got.append((sim.now, f)))
    fabric.fault_filter = lambda src, dst, frame, nbytes: [
        (0, frame), (5_000, frame + "-dup")]
    fabric.transmit("a", "b", "x", 100)
    sim.run()
    base = DEFAULT_COSTS.wire_ns(100)
    assert got == [(base, "x"), (base + 5_000, "x-dup")]


def test_fault_filter_sees_each_broadcast_destination():
    sim, fabric = make_fabric()
    seen = []
    for name in "abc":
        fabric.attach(name, lambda f: None)

    def spy(src, dst, frame, nbytes):
        seen.append((src, dst))
        return None

    fabric.fault_filter = spy
    fabric.transmit("a", BROADCAST_ADDR, "arp", 60)
    sim.run()
    assert sorted(seen) == [("a", "b"), ("a", "c")]


# ---------------------------------------------------------------------------
# FaultEvent / FaultPlan
# ---------------------------------------------------------------------------

def test_fault_event_validation():
    with pytest.raises(ValueError):
        FaultEvent("not-a-kind", 0, 10)
    with pytest.raises(ValueError):
        FaultEvent("loss", 10, 10)  # empty window
    with pytest.raises(ValueError):
        FaultEvent("loss", 0, 10, rate=1.5)


def test_fault_event_matching():
    e = FaultEvent("loss", 0, 10, src="a")
    assert e.matches_link("a", "b")
    assert not e.matches_link("b", "a")
    assert FaultEvent("loss", 0, 10).matches_link("x", "y")
    d = FaultEvent("nic_stall", 0, 10, extra_ns=5, device="dpdk0")
    assert d.matches_device("server.dpdk0")
    assert d.matches_device("dpdk0.rxq")
    assert not d.matches_device("server.eth0")


def test_fault_event_window():
    e = FaultEvent("loss", 100, 200)
    assert not e.active(99)
    assert e.active(100)
    assert e.active(199)
    assert not e.active(200)


def test_plan_roundtrips_through_json():
    plan = (FaultPlan(seed=9)
            .loss(0, 100, rate=0.5, src="a")
            .partition("a", "b", 50, 150)
            .nvme_slow("nvme0", 0, 1000, factor=20.0)
            .nic_ring_clamp("dpdk0", 10, 20, limit=4))
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan
    assert again.seed == 9
    assert len(again.events) == 5  # partition adds two directional events
    assert again.horizon == 1000


def test_plan_event_partitions_by_kind():
    plan = (FaultPlan()
            .loss(0, 10)
            .nic_stall("dpdk0", 0, 10, extra_ns=5)
            .nvme_slow("nvme0", 0, 10))
    assert [e.kind for e in plan.network_events()] == ["loss"]
    assert [e.kind for e in plan.device_events("h.nvme0")] == ["nvme_slow"]
    assert [e.kind for e in plan.device_events("h.dpdk0")] == ["nic_stall"]
    assert set(NETWORK_KINDS) & set(DEVICE_KINDS) == set()


# ---------------------------------------------------------------------------
# FaultInjector.frame_fate
# ---------------------------------------------------------------------------

def make_injector(plan):
    sim, fabric = make_fabric()
    tracer = Tracer()
    injector = FaultInjector(plan, tracer=tracer)
    injector.attach_fabric(fabric)
    return sim, fabric, tracer, injector


def test_partition_drops_everything_counted_once():
    # A wildcard partition is stored as two events that both match every
    # frame; each frame must still count exactly once.
    plan = FaultPlan().partition(None, None, 0, 1000)
    sim, fabric, tracer, injector = make_injector(plan)
    for _ in range(5):
        assert injector.frame_fate("a", "b", b"x" * 60, 60) == []
    assert tracer.get("fault.partitioned_frames") == 5


def test_loss_outside_window_untouched():
    plan = FaultPlan().loss(1000, 2000, rate=1.0)
    sim, fabric, tracer, injector = make_injector(plan)
    assert injector.frame_fate("a", "b", b"x", 1) is None
    assert tracer.get("fault.lost_frames") == 0


def test_corrupt_flips_one_bit_past_ethernet_header():
    plan = FaultPlan().corrupt(0, 1000, rate=1.0)
    sim, fabric, tracer, injector = make_injector(plan)
    frame = bytes(range(64))
    fate = injector.frame_fate("a", "b", frame, 64)
    assert len(fate) == 1
    (_extra, mangled) = fate[0]
    assert mangled != frame
    assert mangled[:14] == frame[:14]  # ethernet header untouched
    diff = [i for i in range(64) if mangled[i] != frame[i]]
    assert len(diff) == 1
    assert bin(mangled[diff[0]] ^ frame[diff[0]]).count("1") == 1


def test_corrupt_non_byte_frame_drops():
    plan = FaultPlan().corrupt(0, 1000, rate=1.0)
    sim, fabric, tracer, injector = make_injector(plan)
    assert injector.frame_fate("a", "b", object(), 64) == []
    assert tracer.get("fault.corrupt_dropped_frames") == 1


def test_duplicate_returns_two_spaced_deliveries():
    plan = FaultPlan().duplicate(0, 1000, rate=1.0)
    sim, fabric, tracer, injector = make_injector(plan)
    fate = injector.frame_fate("a", "b", b"x" * 200, 200)
    assert len(fate) == 2
    assert fate[0][0] == 0
    assert fate[1][0] >= 100
    assert fate[0][1] == fate[1][1] == b"x" * 200


def test_latency_event_delays_deterministically():
    plan = FaultPlan().latency(0, 1000, extra_ns=7_777)
    sim, fabric, tracer, injector = make_injector(plan)
    assert injector.frame_fate("a", "b", b"x", 1) == [(7_777, b"x")]


def test_link_filter_scopes_faults():
    plan = FaultPlan().loss(0, 1000, rate=1.0, src="a", dst="b")
    sim, fabric, tracer, injector = make_injector(plan)
    assert injector.frame_fate("a", "b", b"x", 1) == []
    assert injector.frame_fate("b", "a", b"x", 1) is None


def test_same_plan_same_decisions():
    plan_json = (FaultPlan(seed=77)
                 .loss(0, 10_000, rate=0.5)
                 .reorder(0, 10_000, rate=0.5, jitter_ns=500)
                 .to_json())

    def decisions():
        injector = make_injector(FaultPlan.from_json(plan_json))[3]
        return [injector.frame_fate("a", "b", b"x" * 60, 60)
                for _ in range(50)]

    assert decisions() == decisions()


def test_injector_installs_on_world():
    from repro.testbed import make_spdk_libos

    world, libos = make_spdk_libos()
    plan = FaultPlan().nvme_slow("nvme0", 0, 1000, factor=2.0)
    injector = world.install_faults(plan)
    assert world.injector is injector
    assert world.fabric.fault_filter == injector.frame_fate
    assert libos.nvme.faults is not None
    assert libos.nvme.faults.io_factor(500) == 2.0
    assert libos.nvme.faults.io_factor(1500) == 1.0


def test_rng_fork_named_is_stable_and_distinct():
    a = Rng(1).fork_named("fault-injector")
    b = Rng(1).fork_named("fault-injector")
    c = Rng(1).fork_named("workload")
    seq = [a.randint(0, 1 << 30) for _ in range(8)]
    assert seq == [b.randint(0, 1 << 30) for _ in range(8)]
    assert seq != [c.randint(0, 1 << 30) for _ in range(8)]


def test_tracer_signature_tracks_counters_and_events():
    t1, t2 = Tracer(keep_events=True), Tracer(keep_events=True)
    for t in (t1, t2):
        t.count("x", 3)
        t.record(10, "e", "detail")
    assert t1.signature() == t2.signature()
    t2.count("x")
    assert t1.signature() != t2.signature()
