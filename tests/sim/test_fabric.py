"""Tests for the network fabric."""

import pytest

from repro.sim.costs import DEFAULT_COSTS
from repro.sim.engine import Simulator
from repro.sim.fabric import BROADCAST_ADDR, Fabric
from repro.sim.rand import Rng


def make_fabric(drop_rate=0.0):
    sim = Simulator()
    fabric = Fabric(sim, DEFAULT_COSTS, rng=Rng(1), drop_rate=drop_rate)
    return sim, fabric


def test_point_to_point_delivery():
    sim, fabric = make_fabric()
    got = []
    fabric.attach("a", lambda f: got.append((sim.now, f)))
    fabric.attach("b", lambda f: got.append((sim.now, f)))
    fabric.transmit("a", "b", "hello", nbytes=100)
    sim.run()
    assert len(got) == 1
    when, frame = got[0]
    assert frame == "hello"
    assert when == DEFAULT_COSTS.wire_ns(100)


def test_unknown_destination_dropped():
    sim, fabric = make_fabric()
    fabric.attach("a", lambda f: None)
    fabric.transmit("a", "nowhere", "x", nbytes=10)
    sim.run()
    assert fabric.tracer.get("fabric.unknown_dst_frames") == 1


def test_broadcast_reaches_everyone_but_sender():
    sim, fabric = make_fabric()
    got = {"a": [], "b": [], "c": []}
    for name in got:
        fabric.attach(name, (lambda n: (lambda f: got[n].append(f)))(name))
    fabric.transmit("a", BROADCAST_ADDR, "arp", nbytes=60)
    sim.run()
    assert got["a"] == []
    assert got["b"] == ["arp"]
    assert got["c"] == ["arp"]


def test_egress_serialization_queues_frames():
    sim, fabric = make_fabric()
    arrivals = []
    fabric.attach("a", lambda f: None)
    fabric.attach("b", lambda f: arrivals.append(sim.now))
    nbytes = 10000
    fabric.transmit("a", "b", 1, nbytes)
    fabric.transmit("a", "b", 2, nbytes)
    sim.run()
    serialize = int(nbytes * DEFAULT_COSTS.link_ns_per_byte)
    assert arrivals[0] == serialize + DEFAULT_COSTS.link_latency_ns
    # Second frame waits for the first to finish serializing.
    assert arrivals[1] == 2 * serialize + DEFAULT_COSTS.link_latency_ns


def test_duplicate_attach_rejected():
    _, fabric = make_fabric()
    fabric.attach("a", lambda f: None)
    with pytest.raises(ValueError):
        fabric.attach("a", lambda f: None)


def test_attach_at_broadcast_rejected():
    _, fabric = make_fabric()
    with pytest.raises(ValueError):
        fabric.attach(BROADCAST_ADDR, lambda f: None)


def test_transmit_from_unattached_port_rejected():
    _, fabric = make_fabric()
    with pytest.raises(ValueError):
        fabric.transmit("ghost", "b", "x", 1)


def test_loss_injection_drops_some_frames():
    sim, fabric = make_fabric(drop_rate=0.5)
    got = []
    fabric.attach("a", lambda f: None)
    fabric.attach("b", lambda f: got.append(f))
    for i in range(200):
        fabric.transmit("a", "b", i, 100)
    sim.run()
    dropped = fabric.tracer.get("fabric.dropped_frames")
    assert dropped > 0
    assert len(got) + dropped == 200
    # Roughly half should drop with a fair seed.
    assert 50 < dropped < 150


def test_port_counters():
    sim, fabric = make_fabric()
    fabric.attach("a", lambda f: None)
    port_b = fabric.attach("b", lambda f: None)
    fabric.transmit("a", "b", "x", nbytes=500)
    sim.run()
    assert fabric.ports["a"].tx_frames == 1
    assert fabric.ports["a"].tx_bytes == 500
    assert port_b.rx_frames == 1
    assert port_b.rx_bytes == 500


def test_detach_stops_delivery():
    sim, fabric = make_fabric()
    got = []
    fabric.attach("a", lambda f: None)
    fabric.attach("b", lambda f: got.append(f))
    fabric.detach("b")
    fabric.transmit("a", "b", "x", 10)
    sim.run()
    assert got == []
