"""Tests for CPU cores and the cost model."""

import pytest

from repro.sim.costs import DEFAULT_COSTS, CostModel, fast_network_profile
from repro.sim.cpu import Core, CpuSet
from repro.sim.engine import Simulator


class TestCore:
    def test_busy_advances_time(self):
        sim = Simulator()
        core = Core(sim)

        def work():
            yield core.busy(300)
            return sim.now

        p = sim.spawn(work())
        sim.run()
        assert p.value == 300

    def test_contention_serializes_fifo(self):
        sim = Simulator()
        core = Core(sim)
        done = {}

        def work(name, ns):
            yield core.busy(ns)
            done[name] = sim.now

        sim.spawn(work("a", 100))
        sim.spawn(work("b", 50))
        sim.run()
        # b queued behind a on the same core
        assert done == {"a": 100, "b": 150}

    def test_two_cores_run_in_parallel(self):
        sim = Simulator()
        cpus = CpuSet(sim, 2)
        done = {}

        def work(name, core, ns):
            yield core.busy(ns)
            done[name] = sim.now

        sim.spawn(work("a", cpus[0], 100))
        sim.spawn(work("b", cpus[1], 100))
        sim.run()
        assert done == {"a": 100, "b": 100}

    def test_busy_accounting(self):
        sim = Simulator()
        core = Core(sim)

        def work():
            yield core.busy(100)
            yield sim.timeout(900)

        sim.spawn(work())
        sim.run()
        assert core.busy_ns == 100
        assert core.utilization() == pytest.approx(0.1)

    def test_negative_charge_rejected(self):
        sim = Simulator()
        core = Core(sim)
        with pytest.raises(ValueError):
            core.busy(-5)

    def test_charge_async_accumulates_without_waiter(self):
        sim = Simulator()
        core = Core(sim)
        core.charge_async(500)
        assert core.busy_ns == 500
        assert core.free_at == 500

    def test_cycles_conversion(self):
        sim = Simulator()
        core = Core(sim, ghz=4.0)
        assert core.cycles(4000) == 1000

    def test_cpuset_pick_least_loaded(self):
        sim = Simulator()
        cpus = CpuSet(sim, 2)
        cpus[0].charge_async(1000)
        assert cpus.pick() is cpus[1]

    def test_cpuset_requires_a_core(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CpuSet(sim, 0)


class TestCostModel:
    def test_copy_cost_matches_paper_rate(self):
        # The paper: copying a 4KB page takes ~1us on a 4GHz CPU.
        c = DEFAULT_COSTS
        assert c.copy_ns(4096) == pytest.approx(1000, abs=c.copy_base_ns + 1)

    def test_copy_cost_scales_linearly(self):
        c = DEFAULT_COSTS
        small = c.copy_ns(4096)
        big = c.copy_ns(4096 * 8)
        assert big - c.copy_base_ns == pytest.approx(8 * (small - c.copy_base_ns))

    def test_copy_of_nothing_is_free(self):
        assert DEFAULT_COSTS.copy_ns(0) == 0

    def test_dma_has_base_plus_per_byte(self):
        c = DEFAULT_COSTS
        assert c.dma_ns(0) == c.dma_base_ns
        assert c.dma_ns(10000) > c.dma_ns(100)

    def test_wire_time_includes_propagation(self):
        c = DEFAULT_COSTS
        assert c.wire_ns(0) == c.link_latency_ns
        assert c.wire_ns(1500) == c.link_latency_ns + int(1500 * c.link_ns_per_byte)

    def test_registration_region_cheaper_than_per_buffer_at_scale(self):
        c = DEFAULT_COSTS
        # One big region registration vs 1000 per-buffer registrations.
        region = c.registration_ns(4096 * 1000)
        buffers = 1000 * c.registration_ns(4096, per_buffer=True)
        assert region < buffers / 5

    def test_nvme_write_faster_than_read(self):
        c = DEFAULT_COSTS
        assert c.nvme_io_ns(4096, write=True) < c.nvme_io_ns(4096, write=False)

    def test_with_overrides_does_not_mutate_original(self):
        c = CostModel()
        c2 = c.with_overrides(syscall_ns=999)
        assert c2.syscall_ns == 999
        assert c.syscall_ns == DEFAULT_COSTS.syscall_ns

    def test_profiles_differ(self):
        assert fast_network_profile().link_latency_ns < DEFAULT_COSTS.link_latency_ns

    def test_as_dict_roundtrip(self):
        d = DEFAULT_COSTS.as_dict()
        assert d["syscall_ns"] == DEFAULT_COSTS.syscall_ns
        assert "copy_page_ns" in d

    def test_kernel_stack_slower_than_user_stack(self):
        # The structural premise of the paper.
        c = DEFAULT_COSTS
        assert c.kernel_net_tx_ns > 3 * c.user_net_tx_ns
        assert c.kernel_net_rx_ns > 3 * c.user_net_rx_ns
