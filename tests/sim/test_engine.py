"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import (
    Completion,
    Interrupt,
    SimulationError,
    Simulator,
    all_of,
    any_of,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(250)
        return sim.now

    p = sim.spawn(proc())
    sim.run()
    assert p.value == 250
    assert sim.now == 250


def test_zero_timeout_runs_same_timestep():
    sim = Simulator()

    def proc():
        yield sim.timeout(0)
        return sim.now

    p = sim.spawn(proc())
    sim.run()
    assert p.value == 0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.call_in(300, order.append, "c")
    sim.call_in(100, order.append, "a")
    sim.call_in(200, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_fire_in_fifo_order():
    sim = Simulator()
    order = []
    for tag in ("x", "y", "z"):
        sim.call_in(50, order.append, tag)
    sim.run()
    assert order == ["x", "y", "z"]


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.call_in(1000, fired.append, 1)
    sim.run(until=500)
    assert fired == []
    assert sim.now == 500
    sim.run()
    assert fired == [1]


def test_process_return_value_joinable():
    sim = Simulator()

    def child():
        yield sim.timeout(10)
        return 42

    def parent():
        value = yield sim.spawn(child())
        return value + 1

    p = sim.spawn(parent())
    sim.run()
    assert p.value == 43


def test_yield_from_subroutine_composes():
    sim = Simulator()

    def sub(n):
        yield sim.timeout(n)
        return n * 2

    def main():
        a = yield from sub(5)
        b = yield from sub(7)
        return (a, b, sim.now)

    p = sim.spawn(main())
    sim.run()
    assert p.value == (10, 14, 12)


def test_completion_delivers_value():
    sim = Simulator()
    done = sim.completion("x")

    def waiter():
        value = yield done
        return value

    p = sim.spawn(waiter())
    sim.call_in(100, done.trigger, "payload")
    sim.run()
    assert p.value == "payload"


def test_completion_trigger_twice_raises():
    sim = Simulator()
    done = sim.completion()
    done.trigger(1)
    with pytest.raises(SimulationError):
        done.trigger(2)


def test_already_triggered_completion_resumes_immediately():
    sim = Simulator()
    done = sim.completion()
    done.trigger("early")

    def waiter():
        value = yield done
        return (value, sim.now)

    p = sim.spawn(waiter())
    sim.run()
    assert p.value == ("early", 0)


def test_completion_failure_propagates_into_process():
    sim = Simulator()
    done = sim.completion()

    def waiter():
        try:
            yield done
        except RuntimeError as err:
            return "caught:%s" % err
        return "no-error"

    p = sim.spawn(waiter())
    sim.call_in(5, done.fail, RuntimeError("boom"))
    sim.run()
    assert p.value == "caught:boom"


def test_process_crash_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        raise ValueError("child died")

    def parent():
        try:
            yield sim.spawn(child())
        except ValueError:
            return "observed"

    p = sim.spawn(parent())
    sim.run()
    assert p.value == "observed"


def test_unjoined_process_crash_surfaces_from_run():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        raise ValueError("unobserved")

    sim.spawn(child())
    with pytest.raises(ValueError):
        sim.run()


def test_any_of_returns_first_completion():
    sim = Simulator()
    slow = sim.timeout(100, "slow")
    fast = sim.timeout(10, "fast")

    def waiter():
        index, value = yield any_of(sim, [slow, fast])
        return (index, value, sim.now)

    p = sim.spawn(waiter())
    sim.run()
    assert p.value == (1, "fast", 10)


def test_all_of_waits_for_every_completion():
    sim = Simulator()
    events = [sim.timeout(t, t) for t in (30, 10, 20)]

    def waiter():
        values = yield all_of(sim, events)
        return (values, sim.now)

    p = sim.spawn(waiter())
    sim.run()
    assert p.value == ([30, 10, 20], 30)


def test_all_of_empty_list_fires_immediately():
    sim = Simulator()

    def waiter():
        values = yield all_of(sim, [])
        return values

    p = sim.spawn(waiter())
    sim.run()
    assert p.value == []


def test_interrupt_wakes_blocked_process():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(10**9)
        except Interrupt as intr:
            return ("interrupted", intr.cause, sim.now)

    p = sim.spawn(sleeper())
    sim.call_in(77, p.interrupt, "wakeup")
    sim.run()
    assert p.value == ("interrupted", "wakeup", 77)


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)
        return "done"

    p = sim.spawn(quick())
    sim.run()
    p.interrupt("late")
    sim.run()
    assert p.value == "done"


def test_yielding_garbage_is_an_error():
    sim = Simulator()

    def bad():
        yield 12345

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_complete_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(500)
        return "ok"

    p = sim.spawn(proc())
    assert sim.run_until_complete(p) == "ok"


def test_run_until_complete_respects_limit():
    sim = Simulator()
    blocked = sim.completion()

    def proc():
        yield blocked

    def feeder():
        while True:
            yield sim.timeout(1000)

    p = sim.spawn(proc())
    sim.spawn(feeder())
    with pytest.raises(SimulationError):
        sim.run_until_complete(p, limit=10000)


def test_many_processes_independent_clocks():
    sim = Simulator()
    results = {}

    def proc(name, delay):
        yield sim.timeout(delay)
        results[name] = sim.now

    for i in range(50):
        sim.spawn(proc(i, i * 10))
    sim.run()
    assert results == {i: i * 10 for i in range(50)}


def test_livelock_detection_raises_instead_of_hanging():
    """A process spinning on instantly-triggered completions fails loudly."""
    sim = Simulator()

    def spinner():
        while True:
            done = sim.completion()
            done.trigger(None)
            yield done  # already triggered: resumes synchronously forever

    sim.spawn(spinner())
    with pytest.raises(SimulationError, match="livelocked"):
        sim.run()
