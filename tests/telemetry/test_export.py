"""Exporter tests: Chrome trace shape, snapshot, report breakdown."""

import json

from repro.sim.engine import Simulator
from repro.telemetry import (Telemetry, breakdown_from_events,
                             chrome_trace_events)


def make_populated():
    sim = Simulator()
    t = Telemetry(sim)
    t.span("push", cat="libos", track="catnip", qd=3).end(end_ns=1_000)
    t.span("rx", cat="netstack", track="catnip").end(end_ns=2_500)
    t.span("nic_tx", cat="device", track="dpdk0").end(end_ns=500)
    t.histogram("qtoken_lifetime_ns").observe(1_000)
    return sim, t


class TestChromeTrace:
    def test_events_are_complete_x_events(self):
        _, t = make_populated()
        events = chrome_trace_events(t)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 3
        for e in xs:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid",
                    "args"} <= set(e)

    def test_ns_precision_in_us_floats(self):
        sim = Simulator()
        t = Telemetry(sim)
        t.span("op", cat="libos").end(end_ns=1_234)
        (x,) = [e for e in chrome_trace_events(t) if e["ph"] == "X"]
        assert x["dur"] == 1.234

    def test_tracks_become_named_processes(self):
        _, t = make_populated()
        events = chrome_trace_events(t)
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {"catnip", "dpdk0"}
        # Spans on the same track share a pid; categories split tids.
        xs = {e["name"]: e for e in events if e["ph"] == "X"}
        assert xs["push"]["pid"] == xs["rx"]["pid"]
        assert xs["push"]["tid"] != xs["rx"]["tid"]

    def test_unfinished_spans_are_skipped(self):
        sim = Simulator()
        t = Telemetry(sim)
        t.span("never-ended")
        assert chrome_trace_events(t) == []

    def test_json_round_trip(self, tmp_path):
        _, t = make_populated()
        path = tmp_path / "trace.json"
        n = t.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n
        assert doc["displayTimeUnit"] == "ns"


class TestSnapshot:
    def test_rollups_and_metrics(self):
        _, t = make_populated()
        snap = t.snapshot()
        assert snap["span_count"] == 3
        assert snap["spans_by_category"]["libos"]["count"] == 1
        assert snap["spans_by_category"]["libos"]["total_ns"] == 1_000
        assert snap["spans_by_name"]["nic_tx"]["max_ns"] == 500
        assert snap["metrics"]["qtoken_lifetime_ns"]["count"] == 1.0


class TestBreakdown:
    def test_per_category_totals(self):
        _, t = make_populated()
        b = breakdown_from_events(t.chrome_trace())
        assert b["libos"]["spans"] == 1
        assert b["libos"]["total_us"] == 1.0
        assert b["netstack"]["total_us"] == 2.5
        assert b["device"]["mean_us"] == 0.5
        assert b["libos"]["names"] == {"push": 1.0}

    def test_accepts_whole_document(self):
        _, t = make_populated()
        doc = {"traceEvents": t.chrome_trace(), "displayTimeUnit": "ns"}
        assert breakdown_from_events(doc) == breakdown_from_events(
            t.chrome_trace())
