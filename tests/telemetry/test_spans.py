"""Unit tests for spans and the Telemetry hub."""

from repro.sim.engine import Simulator
from repro.telemetry import DISABLED, NULL_SPAN, Telemetry


def make():
    sim = Simulator()
    return sim, Telemetry(sim)


class TestSpan:
    def test_covers_sim_time(self):
        sim, t = make()
        span = t.span("op", cat="libos", track="x")
        sim.call_in(100, span.end)
        sim.run()
        assert span.start_ns == 0
        assert span.end_ns == 100
        assert span.duration_ns == 100
        assert t.spans == [span]

    def test_explicit_end_ns(self):
        sim, t = make()
        span = t.span("op", cat="device")
        span.end(end_ns=12345)
        assert span.end_ns == 12345
        assert sim.now == 0  # the analytic end never advanced the clock

    def test_end_is_idempotent(self):
        _, t = make()
        span = t.span("op")
        span.end(end_ns=10)
        span.end(end_ns=99)
        assert span.end_ns == 10
        assert len(t.spans) == 1

    def test_parent_link(self):
        _, t = make()
        parent = t.span("outer")
        child = t.span("inner", parent=parent)
        assert child.parent_id == parent.id
        assert parent.parent_id == 0

    def test_args_and_annotate(self):
        _, t = make()
        span = t.span("op", qd=3)
        span.annotate(nbytes=64)
        span.end(error=None)
        assert span.args == {"qd": 3, "nbytes": 64, "error": None}

    def test_ids_are_unique(self):
        _, t = make()
        ids = {t.span("op").id for _ in range(10)}
        assert len(ids) == 10


class TestDisabled:
    def test_disabled_span_is_null(self):
        t = Telemetry(sim=None)
        assert t.span("anything") is NULL_SPAN
        assert DISABLED.span("x") is NULL_SPAN

    def test_null_span_absorbs(self):
        NULL_SPAN.annotate(a=1)
        NULL_SPAN.end(end_ns=5)
        assert NULL_SPAN.id == 0
        assert DISABLED.spans == []

    def test_reset(self):
        sim, t = make()
        t.span("op").end(end_ns=1)
        t.counter("c").inc()
        t.reset()
        assert t.spans == []
        assert t.metrics == {}
