"""Telemetry must be observation-only: enabling it cannot move the sim.

The contract the chaos battery relies on: ``Tracer.signature()`` hashes
every counter and the fault timeline, so if attaching telemetry changed
one event's timing or minted one counter differently, a golden seed
would drift.  One golden-seed scenario per libOS kind runs twice -
telemetry off, telemetry on - and the signatures must be byte-identical.
"""

import pytest

from repro.testing.scenarios import golden_plan, run_scenario

#: one pinned (scenario, libOS kind) pair per libOS
CASES = [
    ("handshake-loss", "dpdk"),
    ("handshake-loss", "posix"),
    ("handshake-loss", "rdma"),
    ("slow-nvme", "spdk"),
]


@pytest.mark.parametrize("name,kind", CASES, ids=["%s-%s" % c for c in CASES])
def test_signature_identical_with_telemetry(name, kind):
    plan = golden_plan(name, kind)
    off = run_scenario(name, kind, plan=plan).require_ok()
    on = run_scenario(name, kind, plan=plan, telemetry=True).require_ok()
    assert on.signature == off.signature
    assert on.counters == off.counters


def test_telemetry_run_actually_records():
    """Guard against the on-run silently running with telemetry off."""
    from repro.testbed import make_dpdk_libos_pair
    from repro.apps.echo import demi_echo_client, demi_echo_server

    world, client, server = make_dpdk_libos_pair(telemetry=True)
    world.sim.spawn(demi_echo_server(server, port=7, max_requests=3))
    proc = world.sim.spawn(
        demi_echo_client(client, "10.0.0.2", [b"x" * 64] * 3, port=7))
    world.sim.run_until_complete(proc)
    t = world.telemetry
    assert t.enabled
    cats = {s.cat for s in t.spans}
    assert {"libos", "netstack", "device"} <= cats
    # The qtoken-lifetime histogram saw the pushes and pops.
    lifetimes = [m for n, m in t.metrics.items()
                 if n.endswith("qtoken_lifetime_ns")]
    assert lifetimes and any(h.count for h in lifetimes)
