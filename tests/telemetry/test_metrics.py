"""Unit tests for the typed metrics: Counter, Gauge, Histogram, null."""

import pytest

from repro.telemetry import NULL_METRIC, Telemetry
from repro.telemetry.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_incs_accumulate(self):
        c = Counter("c")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_summary(self):
        c = Counter("c")
        c.inc(7)
        assert c.summary()["value"] == 7


class TestGauge:
    def test_set_and_watermarks(self):
        g = Gauge("g")
        g.set(5)
        g.set(2)
        g.set(9)
        assert g.value == 9
        assert g.minimum == 2
        assert g.maximum == 9
        assert g.updates == 3

    def test_adjust(self):
        g = Gauge("g")
        g.set(10)
        g.adjust(-3)
        assert g.value == 7


class TestHistogram:
    def test_count_total_min_max(self):
        h = Histogram("h")
        for v in (1, 2, 4, 1024):
            h.observe(v)
        assert h.count == 4
        assert h.total == 1031
        assert h.vmin == 1
        assert h.vmax == 1024
        assert h.mean == pytest.approx(1031 / 4)

    def test_log2_buckets(self):
        h = Histogram("h")
        h.observe(1)     # bucket 1
        h.observe(1023)  # bucket 10
        h.observe(1024)  # bucket 11
        assert h.buckets[1] == 1
        assert h.buckets[10] == 1
        assert h.buckets[11] == 1

    def test_percentile_upper_bound(self):
        h = Histogram("h")
        for _ in range(99):
            h.observe(10)
        h.observe(100_000)
        # p50 lands in 10's bucket: upper bound 2^4 = 16.
        assert h.percentile(50) <= 16
        assert h.percentile(100) >= 100_000 / 2


class TestHub:
    def test_lazy_registration_returns_same_metric(self):
        t = Telemetry(sim=object())
        # object() has no .now but metrics never read the clock
        assert t.counter("x") is t.counter("x")

    def test_type_mismatch_raises(self):
        t = Telemetry(sim=object())
        t.counter("x")
        with pytest.raises(TypeError):
            t.gauge("x")

    def test_disabled_returns_null(self):
        t = Telemetry(sim=None)
        assert not t.enabled
        assert t.counter("x") is NULL_METRIC
        assert t.gauge("y") is NULL_METRIC
        assert t.histogram("z") is NULL_METRIC
        assert t.metrics == {}

    def test_null_metric_absorbs_everything(self):
        NULL_METRIC.inc()
        NULL_METRIC.set(5)
        NULL_METRIC.adjust(-1)
        NULL_METRIC.observe(123)
        assert NULL_METRIC.value == 0
