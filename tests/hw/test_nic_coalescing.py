"""Tests for kernel-NIC interrupt coalescing."""

from ..conftest import World


def make_pair(coalesce_ns=0):
    from repro.hw.nic import KernelNic

    w = World()
    a, b = w.add_host("a"), w.add_host("b")
    nic_a = KernelNic(a, w.fabric, "02:00:00:00:80:01", name="a.eth0")
    nic_b = KernelNic(b, w.fabric, "02:00:00:00:80:02", name="b.eth0",
                      coalesce_ns=coalesce_ns)
    return w, nic_a, nic_b


class TestCoalescing:
    def test_disabled_by_default_one_interrupt_per_frame(self):
        w, nic_a, nic_b = make_pair()
        got = []
        nic_b.irq_handler = got.append
        for i in range(5):
            nic_a.post_tx(nic_b.mac, b"f%d" % i)
        w.run()
        assert len(got) == 5
        assert w.tracer.get("b.eth0.rx_interrupts") == 5

    def test_burst_within_window_coalesces(self):
        w, nic_a, nic_b = make_pair(coalesce_ns=50_000)
        got = []
        nic_b.irq_handler = got.append
        for i in range(10):
            nic_a.post_tx(nic_b.mac, b"f%d" % i)
        w.run()
        assert len(got) == 10  # everything still delivered
        # First frame interrupts; the burst flushes under one more.
        assert w.tracer.get("b.eth0.rx_interrupts") == 2
        assert w.tracer.get("b.eth0.rx_coalesced") == 9

    def test_coalesced_frames_delayed_to_window_end(self):
        w, nic_a, nic_b = make_pair(coalesce_ns=50_000)
        arrivals = []
        nic_b.irq_handler = lambda f: arrivals.append(w.sim.now)
        nic_a.post_tx(nic_b.mac, b"first")
        nic_a.post_tx(nic_b.mac, b"second")
        w.run()
        # The second frame waited for the window boundary.
        assert arrivals[1] - arrivals[0] >= 40_000

    def test_spaced_frames_each_interrupt(self):
        w, nic_a, nic_b = make_pair(coalesce_ns=10_000)
        got = []
        nic_b.irq_handler = got.append
        for i in range(3):
            w.sim.call_in(i * 1_000_000, nic_a.post_tx, nic_b.mac, b"f")
        w.run()
        assert len(got) == 3
        assert w.tracer.get("b.eth0.rx_interrupts") == 3
        assert w.tracer.get("b.eth0.rx_coalesced") == 0

    def test_sustained_stream_keeps_flushing(self):
        w, nic_a, nic_b = make_pair(coalesce_ns=20_000)
        got = []
        nic_b.irq_handler = got.append
        for i in range(30):
            w.sim.call_in(i * 5_000, nic_a.post_tx, nic_b.mac, b"f%d" % i)
        w.run()
        assert len(got) == 30
        interrupts = w.tracer.get("b.eth0.rx_interrupts")
        # Far fewer interrupts than frames, but enough flushes to deliver.
        assert 1 < interrupts < 15
