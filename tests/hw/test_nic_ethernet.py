"""Tests for the DPDK-class and kernel-class ethernet NICs."""

import pytest

from repro.hw.iommu import IommuFault

from ..conftest import World


def two_dpdk_hosts():
    w = World()
    a = w.add_host("a")
    b = w.add_host("b")
    nic_a = w.add_dpdk(a)
    nic_b = w.add_dpdk(b)
    return w, nic_a, nic_b


class TestDpdkNic:
    def test_frame_delivery_to_rx_ring(self):
        w, nic_a, nic_b = two_dpdk_hosts()
        nic_a.post_tx(nic_b.mac, b"frame-1")
        w.run()
        assert nic_b.rx_burst() == [b"frame-1"]

    def test_rx_burst_respects_limit(self):
        w, nic_a, nic_b = two_dpdk_hosts()
        for i in range(10):
            nic_a.post_tx(nic_b.mac, b"f%d" % i)
        w.run()
        first = nic_b.rx_burst(max_frames=4)
        assert len(first) == 4
        assert nic_b.rx_pending() == 6

    def test_rx_ring_overflow_drops(self):
        w = World()
        a, b = w.add_host("a"), w.add_host("b")
        nic_a = w.add_dpdk(a)
        nic_b = w.add_dpdk(b)
        nic_b.rx_ring_size = 4
        for i in range(8):
            nic_a.post_tx(nic_b.mac, b"x")
        w.run()
        assert nic_b.rx_pending() == 4
        assert w.tracer.get("b.dpdk0.rx_ring_drops") == 4

    def test_rx_signal_wakes_waiter(self):
        w, nic_a, nic_b = two_dpdk_hosts()
        got = []

        def poller():
            yield nic_b.rx_signal()
            got.extend(nic_b.rx_burst())

        w.sim.spawn(poller())
        w.sim.call_in(1000, nic_a.post_tx, nic_b.mac, b"late")
        w.run()
        assert got == [b"late"]

    def test_rx_signal_immediate_when_pending(self):
        w, nic_a, nic_b = two_dpdk_hosts()
        nic_a.post_tx(nic_b.mac, b"f")
        w.run()
        sig = nic_b.rx_signal()
        assert sig.triggered

    def test_tx_latency_includes_dma_and_wire(self):
        w, nic_a, nic_b = two_dpdk_hosts()
        arrive = []

        def poller():
            yield nic_b.rx_signal()
            arrive.append(w.sim.now)

        w.sim.spawn(poller())
        frame = b"z" * 1000
        nic_a.post_tx(nic_b.mac, frame)
        w.run()
        c = w.costs
        expected = (
            c.dma_ns(1000) + c.nic_process_ns       # tx device path
            + c.wire_ns(1000)                        # fabric
            + c.nic_process_ns + c.dma_ns(1000)      # rx device path
        )
        assert arrive[0] == expected

    def test_iommu_validation_on_tx(self):
        w, nic_a, nic_b = two_dpdk_hosts()
        with pytest.raises(IommuFault):
            nic_a.post_tx(nic_b.mac, b"data", dma_addrs=[(0xBAD, 4)])

    def test_registered_memory_tx_allowed(self):
        w, nic_a, nic_b = two_dpdk_hosts()
        host_a = w.hosts["a"]
        buf = host_a.mm.alloc(64)  # transparent registration covers it
        nic_a.post_tx(nic_b.mac, b"data", dma_addrs=[(buf.addr, 64)])
        w.run()
        assert nic_b.rx_pending() == 1


class TestKernelNic:
    def test_rx_invokes_irq_handler(self):
        w = World()
        a, b = w.add_host("a"), w.add_host("b")
        nic_a = w.add_kernel_nic(a)
        nic_b = w.add_kernel_nic(b)
        got = []
        nic_b.irq_handler = got.append
        nic_a.post_tx(nic_b.mac, b"pkt")
        w.run()
        assert got == [b"pkt"]

    def test_rx_charges_interrupt_cost_on_core(self):
        w = World()
        a, b = w.add_host("a"), w.add_host("b")
        nic_a = w.add_kernel_nic(a)
        nic_b = w.add_kernel_nic(b)
        nic_b.irq_handler = lambda f: None
        nic_a.post_tx(nic_b.mac, b"pkt")
        w.run()
        assert b.cpus[0].busy_ns == w.costs.interrupt_ns

    def test_rx_without_handler_drops(self):
        w = World()
        a, b = w.add_host("a"), w.add_host("b")
        nic_a = w.add_kernel_nic(a)
        nic_b = w.add_kernel_nic(b)
        nic_a.post_tx(nic_b.mac, b"pkt")
        w.run()
        assert w.tracer.get("b.eth0.rx_no_handler_drops") == 1
