"""Tests for the RDMA NIC: QPs, reliability, one-sided ops, RNR behaviour."""

import pytest

from repro.hw.nic import QpError

from ..conftest import World


def rdma_pair(drop_rate=0.0):
    w = World(drop_rate=drop_rate)
    a, b = w.add_host("a"), w.add_host("b")
    nic_a, nic_b = w.add_rdma(a), w.add_rdma(b)
    qp_a = nic_a.create_qp()
    qp_b = nic_b.create_qp()
    nic_a.connect_qp(qp_a, nic_b.addr, qp_b.qpn)
    nic_b.connect_qp(qp_b, nic_a.addr, qp_a.qpn)
    return w, (nic_a, qp_a), (nic_b, qp_b)


class TestTwoSided:
    def test_send_recv_delivery(self):
        w, (nic_a, qp_a), (nic_b, qp_b) = rdma_pair()
        buf = w.hosts["b"].mm.alloc(256)
        nic_b.post_recv(qp_b, wr_id=7, buffer=buf)
        nic_a.post_send(qp_a, wr_id=1, payload=b"hello rdma")
        w.run()
        cqes = qp_b.recv_cq.poll()
        assert len(cqes) == 1
        assert cqes[0]["wr_id"] == 7
        assert cqes[0]["status"] == "ok"
        assert buf.read(0, 10) == b"hello rdma"

    def test_sender_gets_completion_on_ack(self):
        w, (nic_a, qp_a), (nic_b, qp_b) = rdma_pair()
        nic_b.post_recv(qp_b, 1, w.hosts["b"].mm.alloc(64))
        nic_a.post_send(qp_a, wr_id=42, payload=b"x")
        w.run()
        scqes = qp_a.send_cq.poll()
        assert [c["wr_id"] for c in scqes] == [42]
        assert scqes[0]["status"] == "ok"

    def test_no_posted_recv_causes_rnr_then_retry_succeeds(self):
        w, (nic_a, qp_a), (nic_b, qp_b) = rdma_pair()
        nic_a.post_send(qp_a, wr_id=1, payload=b"early")
        # Post the buffer only after the RNR NAK would have been sent.
        buf = w.hosts["b"].mm.alloc(64)
        w.sim.call_in(nic_a._rto() // 2, nic_b.post_recv, qp_b, 5, buf)
        w.run()
        assert w.tracer.get("b.rdma0.rnr_naks_sent") >= 1
        assert [c["status"] for c in qp_b.recv_cq.poll()] == ["ok"]
        assert buf.read(0, 5) == b"early"

    def test_rnr_exhaustion_errors_the_qp(self):
        w, (nic_a, qp_a), (nic_b, qp_b) = rdma_pair()
        nic_a.post_send(qp_a, wr_id=9, payload=b"never-received")
        w.run()
        cqes = qp_a.send_cq.poll()
        assert cqes and cqes[0]["status"] == "rnr-exceeded"
        assert qp_a.error
        with pytest.raises(QpError):
            nic_a.post_send(qp_a, wr_id=10, payload=b"more")

    def test_in_order_delivery_of_many_sends(self):
        w, (nic_a, qp_a), (nic_b, qp_b) = rdma_pair()
        bufs = [w.hosts["b"].mm.alloc(64) for _ in range(10)]
        for i, buf in enumerate(bufs):
            nic_b.post_recv(qp_b, i, buf)
        for i in range(10):
            nic_a.post_send(qp_a, wr_id=100 + i, payload=b"m%d" % i)
        w.run()
        cqes = qp_b.recv_cq.poll(max_cqes=100)
        assert [c["wr_id"] for c in cqes] == list(range(10))
        for i, buf in enumerate(bufs):
            assert buf.read(0, len(b"m%d" % i)) == b"m%d" % i

    def test_retransmit_recovers_from_loss(self):
        w, (nic_a, qp_a), (nic_b, qp_b) = rdma_pair(drop_rate=0.3)
        for i in range(20):
            nic_b.post_recv(qp_b, i, w.hosts["b"].mm.alloc(64))
        for i in range(20):
            nic_a.post_send(qp_a, wr_id=i, payload=b"payload-%02d" % i)
        w.run()
        delivered = qp_b.recv_cq.poll(max_cqes=100)
        assert len(delivered) == 20
        assert [c["wr_id"] for c in delivered] == list(range(20))
        assert w.tracer.get("a.rdma0.retransmits") > 0

    def test_oversized_message_completes_with_length_error(self):
        w, (nic_a, qp_a), (nic_b, qp_b) = rdma_pair()
        nic_b.post_recv(qp_b, 1, w.hosts["b"].mm.alloc(4))
        nic_a.post_send(qp_a, wr_id=1, payload=b"way too large")
        w.run()
        cqes = qp_b.recv_cq.poll()
        assert cqes[0]["status"] == "length-error"

    def test_unconnected_qp_rejected(self):
        w = World()
        a = w.add_host("a")
        nic = w.add_rdma(a)
        qp = nic.create_qp()
        with pytest.raises(QpError):
            nic.post_send(qp, 1, b"x")


class TestOneSided:
    def test_rdma_write_updates_remote_memory_without_remote_cpu(self):
        w, (nic_a, qp_a), (nic_b, qp_b) = rdma_pair()
        target = w.hosts["b"].mm.alloc(128)
        w.run()  # drain setup work (alloc/registration CPU charges)
        cpu_before = w.hosts["b"].cpu.busy_ns
        nic_a.post_write(qp_a, wr_id=1, payload=b"remote-write", raddr=target.addr)
        w.run()
        assert target.read(0, 12) == b"remote-write"
        assert [c["status"] for c in qp_a.send_cq.poll()] == ["ok"]
        # One-sided: the write itself burns no CPU on host b.
        assert w.hosts["b"].cpu.busy_ns == cpu_before

    def test_rdma_read_fetches_remote_memory(self):
        w, (nic_a, qp_a), (nic_b, qp_b) = rdma_pair()
        remote = w.hosts["b"].mm.alloc(64).fill(b"server-side-data")
        local = w.hosts["a"].mm.alloc(64)
        nic_a.post_read(qp_a, wr_id=3, raddr=remote.addr, rlen=16, local_buffer=local)
        w.run()
        cqes = qp_a.send_cq.poll()
        assert cqes[0]["status"] == "ok"
        assert cqes[0]["nbytes"] == 16
        assert local.read(0, 16) == b"server-side-data"

    def test_write_to_unregistered_memory_errors_the_qp(self):
        w, (nic_a, qp_a), (nic_b, qp_b) = rdma_pair()
        nic_a.post_write(qp_a, wr_id=1, payload=b"x", raddr=0xDEAD0000)
        w.run()
        assert w.tracer.get("b.rdma0.remote_access_errors") >= 1
        cqes = qp_a.send_cq.poll()
        assert cqes and cqes[0]["status"] == "remote-access-error"
        assert qp_a.error

    def test_mixed_one_and_two_sided_in_order(self):
        w, (nic_a, qp_a), (nic_b, qp_b) = rdma_pair()
        mm_b = w.hosts["b"].mm
        recv_buf = mm_b.alloc(64)
        target = mm_b.alloc(64)
        nic_b.post_recv(qp_b, 1, recv_buf)
        nic_a.post_write(qp_a, 10, b"AAAA", raddr=target.addr)
        nic_a.post_send(qp_a, 11, b"BBBB")
        w.run()
        assert target.read(0, 4) == b"AAAA"
        assert recv_buf.read(0, 4) == b"BBBB"
        send_cqes = qp_a.send_cq.poll(10)
        assert [c["wr_id"] for c in send_cqes] == [10, 11]


class TestCq:
    def test_cq_signal_wakes_poller(self):
        w, (nic_a, qp_a), (nic_b, qp_b) = rdma_pair()
        nic_b.post_recv(qp_b, 1, w.hosts["b"].mm.alloc(64))
        seen = []

        def poller():
            yield qp_b.recv_cq.signal()
            seen.extend(qp_b.recv_cq.poll())

        w.sim.spawn(poller())
        w.sim.call_in(500, nic_a.post_send, qp_a, 1, b"wake")
        w.run()
        assert len(seen) == 1 and seen[0]["status"] == "ok"

    def test_cq_poll_limit(self):
        w, (nic_a, qp_a), (nic_b, qp_b) = rdma_pair()
        for i in range(5):
            nic_b.post_recv(qp_b, i, w.hosts["b"].mm.alloc(64))
            nic_a.post_send(qp_a, i, b"m")
        w.run()
        assert len(qp_b.recv_cq.poll(max_cqes=2)) == 2
        assert qp_b.recv_cq.pending() == 3
