"""Tests for the simulated NVMe device."""

import pytest

from repro.hw.nvme import NvmeDevice, NvmeError
from repro.sim.engine import Simulator
from repro.sim.host import Host


def make_device(**kw):
    sim = Simulator()
    host = Host(sim, "h0")
    dev = NvmeDevice(host, **kw)
    return sim, dev


def run(sim, gen):
    p = sim.spawn(gen)
    sim.run()
    return p.value


def test_write_then_read_roundtrip():
    sim, dev = make_device()
    payload = b"A" * dev.block_size

    def proc():
        yield dev.submit_write(10, payload)
        data = yield dev.submit_read(10, 1)
        return data

    assert run(sim, proc()) == payload


def test_unwritten_blocks_read_zero():
    sim, dev = make_device()

    def proc():
        data = yield dev.submit_read(5, 2)
        return data

    assert run(sim, proc()) == b"\x00" * (2 * dev.block_size)


def test_multiblock_write_spans_blocks():
    sim, dev = make_device()
    payload = bytes(range(256)) * 32  # 8192 = 2 blocks

    def proc():
        yield dev.submit_write(0, payload)
        data = yield dev.submit_read(0, 2)
        return data

    assert run(sim, proc()) == payload
    assert dev.peek_block(1) == payload[dev.block_size:]


def test_partial_block_write_rejected():
    _, dev = make_device()
    with pytest.raises(NvmeError):
        dev.submit_write(0, b"short")


def test_out_of_range_rejected():
    _, dev = make_device(capacity_blocks=16)
    with pytest.raises(NvmeError):
        dev.submit_read(15, 2)
    with pytest.raises(NvmeError):
        dev.submit_read(-1, 1)
    with pytest.raises(NvmeError):
        dev.submit_read(0, 0)


def test_read_latency_matches_cost_model():
    sim, dev = make_device()

    def proc():
        yield dev.submit_read(0, 1)
        return sim.now

    when = run(sim, proc())
    assert when == dev.costs.nvme_io_ns(dev.block_size, write=False)


def test_write_faster_than_read():
    sim, dev = make_device()
    times = {}

    def writer():
        yield dev.submit_write(0, b"w" * dev.block_size)
        times["w"] = sim.now

    sim.spawn(writer())
    sim.run()

    sim2, dev2 = make_device()

    def reader():
        yield dev2.submit_read(0, 1)
        times["r"] = sim2.now

    sim2.spawn(reader())
    sim2.run()
    assert times["w"] < times["r"]


def test_channels_give_parallelism():
    sim1, dev1 = make_device(channels=1)
    done1 = []

    def io(dev, done):
        def proc():
            yield dev.submit_read(0, 1)
            done.append(dev.sim.now)
        return proc()

    sim1.spawn(io(dev1, done1))
    sim1.spawn(io(dev1, done1))
    sim1.run()
    assert done1[1] == 2 * done1[0]  # serialized on one channel

    sim8, dev8 = make_device(channels=8)
    done8 = []
    sim8.spawn(io(dev8, done8))
    sim8.spawn(io(dev8, done8))
    sim8.run()
    assert done8[0] == done8[1]  # parallel channels


def test_flush_counts_and_delays():
    sim, dev = make_device()

    def proc():
        yield dev.submit_flush()
        return sim.now

    when = run(sim, proc())
    assert when == dev.costs.nvme_flush_ns
    assert dev.flushes == 1


def test_bad_geometry_rejected():
    sim = Simulator()
    host = Host(sim, "h0")
    with pytest.raises(NvmeError):
        NvmeDevice(host, capacity_blocks=0)


def test_counters_track_bytes():
    sim, dev = make_device()

    def proc():
        yield dev.submit_write(0, b"x" * dev.block_size)
        yield dev.submit_read(0, 1)

    run(sim, proc())
    assert dev.tracer.get("nvme0.write_bytes") == dev.block_size
    assert dev.tracer.get("nvme0.read_bytes") == dev.block_size
