"""Tests for the IOMMU and the offload engine."""

import pytest

from repro.hw.iommu import Iommu, IommuFault
from repro.hw.offload import ALL_OFFLOADS, OffloadEngine
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.trace import Tracer


class TestIommu:
    def test_map_then_translate(self):
        iommu = Iommu(Tracer())
        iommu.map(0x1000, 0x1000)
        iommu.translate(0x1800, 16)  # inside

    def test_unmapped_address_faults(self):
        iommu = Iommu(Tracer())
        with pytest.raises(IommuFault):
            iommu.translate(0x1000, 16)

    def test_range_straddling_region_edge_faults(self):
        iommu = Iommu(Tracer())
        iommu.map(0x1000, 0x100)
        with pytest.raises(IommuFault):
            iommu.translate(0x10F0, 0x20)

    def test_unmap_revokes_access(self):
        iommu = Iommu(Tracer())
        handle = iommu.map(0x1000, 0x1000)
        iommu.unmap(handle)
        with pytest.raises(IommuFault):
            iommu.translate(0x1000, 8)

    def test_unmap_unknown_handle_raises(self):
        iommu = Iommu(Tracer())
        with pytest.raises(KeyError):
            iommu.unmap(99)

    def test_empty_map_rejected(self):
        iommu = Iommu(Tracer())
        with pytest.raises(ValueError):
            iommu.map(0x1000, 0)

    def test_fault_counter_increments(self):
        tracer = Tracer()
        iommu = Iommu(tracer, "dev.iommu")
        with pytest.raises(IommuFault):
            iommu.translate(0, 1)
        assert tracer.get("dev.iommu.faults") == 1

    def test_mapped_accounting(self):
        iommu = Iommu(Tracer())
        iommu.map(0x1000, 100)
        iommu.map(0x4000, 200)
        assert iommu.mapped_ranges == 2
        assert iommu.mapped_bytes == 300


def make_host():
    sim = Simulator()
    return sim, Host(sim, "h0")


class TestOffloadEngine:
    def test_default_supports_everything(self):
        _, host = make_host()
        eng = OffloadEngine(host)
        for op in ALL_OFFLOADS:
            assert eng.supports(op)

    def test_restricted_capabilities(self):
        _, host = make_host()
        eng = OffloadEngine(host, capabilities={"filter"})
        assert eng.supports("filter")
        assert not eng.supports("map")

    def test_unknown_capability_rejected(self):
        _, host = make_host()
        with pytest.raises(ValueError):
            OffloadEngine(host, capabilities={"teleport"})

    def test_run_charges_device_not_cpu(self):
        sim, host = make_host()
        eng = OffloadEngine(host)

        def proc():
            result = yield eng.run("filter", lambda x: x % 2 == 0, 4)
            return (result, sim.now)

        p = sim.spawn(proc())
        sim.run()
        result, when = p.value
        assert result is True
        assert when == eng.element_ns
        assert host.cpu.busy_ns == 0  # zero host CPU: the point of offload
        assert eng.device_busy_ns == eng.element_ns

    def test_run_unsupported_operator_raises(self):
        _, host = make_host()
        eng = OffloadEngine(host, capabilities={"map"})
        with pytest.raises(ValueError):
            eng.run("sort", lambda x: x, 1)

    def test_device_pipeline_serializes(self):
        sim, host = make_host()
        eng = OffloadEngine(host, element_ns=100)
        done_at = []

        def proc(i):
            yield eng.run("map", lambda x: x, i)
            done_at.append(sim.now)

        sim.spawn(proc(0))
        sim.spawn(proc(1))
        sim.run()
        assert done_at == [100, 200]

    def test_run_now_returns_value_and_accounts_time(self):
        _, host = make_host()
        eng = OffloadEngine(host, element_ns=150)
        assert eng.run_now("filter", lambda x: x > 5, 9) is True
        assert eng.device_busy_ns == 150

    def test_attach_to_nic_like_object(self):
        _, host = make_host()
        eng = OffloadEngine(host)

        class FakeNic:
            offload = None

        nic = FakeNic()
        eng.attach(nic)
        assert nic.offload is eng
