"""Tests for multi-queue RX with receive-side scaling."""

import pytest

from repro.netstack.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.netstack.ipv4 import Ipv4Packet, PROTO_UDP
from repro.netstack.udp import UdpDatagram

from ..conftest import World


def make_rss_pair(n_rx_queues=4):
    from repro.hw.nic import DpdkNic

    w = World()
    a, b = w.add_host("a"), w.add_host("b")
    nic_a = DpdkNic(a, w.fabric, "02:00:00:00:50:01", name="a.dpdk0")
    nic_b = DpdkNic(b, w.fabric, "02:00:00:00:50:02", name="b.dpdk0",
                    n_rx_queues=n_rx_queues)
    return w, nic_a, nic_b


def udp_frame(dst_mac, src_port, dst_port, payload=b"x"):
    datagram = UdpDatagram(src_port, dst_port, payload)
    packet = Ipv4Packet("10.0.0.1", "10.0.0.2", PROTO_UDP,
                        datagram.pack("10.0.0.1", "10.0.0.2"))
    return EthernetFrame(dst_mac, "02:00:00:00:50:01",
                         ETHERTYPE_IPV4, packet.pack()).pack()


class TestRss:
    def test_single_queue_default_unchanged(self):
        w, nic_a, _ = make_rss_pair()
        assert nic_a.n_rx_queues == 1

    def test_zero_queues_rejected(self):
        from repro.hw.nic import DpdkNic
        w = World()
        host = w.add_host("h")
        with pytest.raises(ValueError):
            DpdkNic(host, w.fabric, "02:00:00:00:50:09", n_rx_queues=0)

    def test_same_flow_same_queue(self):
        w, nic_a, nic_b = make_rss_pair()
        for _ in range(8):
            nic_a.post_tx(nic_b.mac, udp_frame(nic_b.mac, 5555, 80))
        w.run()
        occupied = [q for q in range(4) if nic_b.rx_pending(q) > 0]
        assert len(occupied) == 1
        assert nic_b.rx_pending(occupied[0]) == 8

    def test_different_flows_spread_across_queues(self):
        w, nic_a, nic_b = make_rss_pair()
        for src_port in range(5000, 5064):
            nic_a.post_tx(nic_b.mac, udp_frame(nic_b.mac, src_port, 80))
        w.run()
        occupied = [q for q in range(4) if nic_b.rx_pending(q) > 0]
        assert len(occupied) >= 3  # 64 flows land on >= 3 of 4 queues
        assert sum(nic_b.rx_pending(q) for q in range(4)) == 64

    def test_non_ip_traffic_lands_in_queue_zero(self):
        w, nic_a, nic_b = make_rss_pair()
        nic_a.post_tx(nic_b.mac, b"\x00" * 40)  # junk, not IPv4
        w.run()
        assert nic_b.rx_pending(0) == 1
        assert all(nic_b.rx_pending(q) == 0 for q in range(1, 4))

    def test_per_queue_signals_are_independent(self):
        w, nic_a, nic_b = make_rss_pair()
        # Find two flows that hash to different queues.
        flows = {}
        for src_port in range(6000, 6100):
            frame = udp_frame(nic_b.mac, src_port, 80)
            queue = nic_b._rss_queue(frame)
            flows.setdefault(queue, src_port)
            if len(flows) >= 2:
                break
        (q1, port1), (q2, port2) = list(flows.items())[:2]
        woken = []

        def poller(queue):
            yield nic_b.rx_signal(queue)
            woken.append((queue, w.sim.now))

        w.sim.spawn(poller(q1))
        w.sim.spawn(poller(q2))
        nic_a.post_tx(nic_b.mac, udp_frame(nic_b.mac, port1, 80))
        w.run()
        # Only the queue that received traffic woke its poller.
        assert [q for q, _t in woken] == [q1]

    def test_per_queue_counters(self):
        w, nic_a, nic_b = make_rss_pair()
        frame = udp_frame(nic_b.mac, 7777, 80)
        queue = nic_b._rss_queue(frame)
        nic_a.post_tx(nic_b.mac, frame)
        w.run()
        assert w.tracer.get("b.dpdk0.rxq%d_frames" % queue) == 1


class TestMultiCoreScaling:
    def test_four_pollers_drain_in_parallel(self):
        """N cores each polling their own ring: the multi-core recipe."""
        w, nic_a, nic_b = make_rss_pair()
        host_b = w.hosts["b"]
        drained = {q: [] for q in range(4)}

        def poller(queue, core):
            while sum(len(v) for v in drained.values()) < 64:
                yield nic_b.rx_signal(queue)
                yield core.busy(w.costs.dpdk_poll_ns)
                for frame in nic_b.rx_burst(32, queue=queue):
                    yield core.busy(w.costs.user_net_rx_ns)
                    drained[queue].append(frame)

        for q in range(4):
            w.sim.spawn(poller(q, host_b.cpus[q]))
        for src_port in range(5000, 5064):
            nic_a.post_tx(nic_b.mac, udp_frame(nic_b.mac, src_port, 80))
        w.run(until=10_000_000)
        assert sum(len(v) for v in drained.values()) == 64
        # Work actually spread across cores:
        busy_cores = [c for c in host_b.cpus.cores if c.busy_ns > 0]
        assert len(busy_cores) >= 3
