"""Completion-time semantics of the offload engine and the NVMe scan.

The original ``OffloadEngine.run`` executed the element function inline
at submit time and a raising function leaked the completion (the waiter
hung forever).  These tests pin the fixed contract: the function runs
when the device pipeline reaches the element, and an exception becomes
an *error completion* that re-raises in the waiter.  The NVMe
``submit_scan`` command was built against the same contract from the
start; its tests live here too.
"""

import pytest

from repro.core.types import DeviceFailed
from repro.hw.nvme import NvmeDevice
from repro.hw.offload import OffloadEngine
from repro.sim.engine import Simulator
from repro.sim.faults import FaultPlan
from repro.sim.host import Host

from ..conftest import World


def make_host():
    sim = Simulator()
    return sim, Host(sim, "h0")


class TestDeferredExecution:
    def test_fn_runs_at_completion_time_not_submit(self):
        sim, host = make_host()
        eng = OffloadEngine(host, element_ns=100)
        calls = []
        eng.run("map", lambda x: calls.append(sim.now) or x, 1)
        # Nothing ran at submit time: the device pipeline has not
        # reached the element yet.
        assert calls == []
        sim.run()
        assert calls == [100]

    def test_waiter_sees_result_after_element_delay(self):
        sim, host = make_host()
        eng = OffloadEngine(host, element_ns=150)

        def proc():
            result = yield eng.run("map", lambda x: x * 2, 21)
            return result, sim.now

        p = sim.spawn(proc())
        sim.run()
        assert p.value == (42, 150)

    def test_submit_time_state_change_is_visible_to_fn(self):
        """The function observes state as of execution, not submission."""
        sim, host = make_host()
        eng = OffloadEngine(host, element_ns=100)
        box = {"v": "at-submit"}
        p = sim.spawn(iter_run(eng, lambda _x: box["v"]))
        box["v"] = "at-completion"
        sim.run()
        assert p.value == "at-completion"

    def test_raising_fn_becomes_error_completion(self):
        sim, host = make_host()
        eng = OffloadEngine(host)

        def boom(_x):
            raise RuntimeError("element fault")

        def proc():
            try:
                yield eng.run("filter", boom, 1)
            except RuntimeError as exc:
                return "raised: %s" % exc
            return "leaked"

        p = sim.spawn(proc())
        sim.run()
        assert p.value == "raised: element fault"
        assert host.tracer.get("offload0.offload_element_faults") == 1

    def test_raising_fn_still_charges_device_time(self):
        sim, host = make_host()
        eng = OffloadEngine(host, element_ns=200)

        def proc():
            try:
                yield eng.run("map", lambda _x: 1 // 0, 1)
            except ZeroDivisionError:
                pass

        sim.spawn(proc())
        sim.run()
        assert eng.device_busy_ns == 200
        assert host.cpu.busy_ns == 0

    def test_pipelined_elements_execute_in_fifo_order(self):
        sim, host = make_host()
        eng = OffloadEngine(host, element_ns=100)
        order = []
        for i in range(3):
            eng.run("map", lambda x: order.append((x, sim.now)), i)
        sim.run()
        assert order == [(0, 100), (1, 200), (2, 300)]

    def test_charge_device_extends_the_pipeline(self):
        sim, host = make_host()
        eng = OffloadEngine(host, element_ns=100)
        delay = eng.charge_device(500)
        assert delay == 500
        assert eng.device_busy_ns == 500
        # The next element queues behind the charged work.
        def proc():
            yield eng.run("map", lambda x: x, 1)
            return sim.now

        p = sim.spawn(proc())
        sim.run()
        assert p.value == 600
        assert host.cpu.busy_ns == 0


def iter_run(eng, fn):
    result = yield eng.run("map", fn, None)
    return result


def make_nvme(plan=None):
    w = World()
    host = w.add_host("h")
    nvme = host.nvme = NvmeDevice(host, name="h.nvme0")
    if plan is not None:
        w.install_faults(plan)
    return w, nvme


class TestNvmeScan:
    def test_scan_runs_program_over_device_bytes(self):
        w, nvme = make_nvme()

        def proc():
            yield nvme.submit_write(0, b"\xAA" * 4096 + b"\xBB" * 4096)
            count = yield nvme.submit_scan(
                0, 2, lambda data: data.count(b"\xBB"))
            return count

        p = w.sim.spawn(proc())
        w.run()
        assert p.value == 4096
        assert nvme.tracer.get("h.nvme0.scans") == 1
        assert nvme.tracer.get("h.nvme0.scan_bytes") == 8192

    def test_scan_observes_completion_time_data(self):
        """A write landing between submit and completion is visible."""
        w, nvme = make_nvme()

        def proc():
            done = nvme.submit_scan(0, 1, lambda data: data.count(b"\xCC"))
            # Submitted *after* the scan, but flash timing completes the
            # one-block write before the scan streams the block.
            yield nvme.submit_write(0, b"\xCC" * 4096)
            count = yield done
            return count

        p = w.sim.spawn(proc())
        w.run()
        assert p.value == 4096

    def test_raising_program_fails_the_completion(self):
        w, nvme = make_nvme()

        def proc():
            try:
                yield nvme.submit_scan(0, 1, lambda _d: 1 // 0)
            except ZeroDivisionError:
                return "raised"
            return "leaked"

        p = w.sim.spawn(proc())
        w.run()
        assert p.value == "raised"
        assert nvme.tracer.get("h.nvme0.scan_faults") == 1

    def test_abort_all_fails_inflight_scan(self):
        w, nvme = make_nvme()
        ran = []
        done = nvme.submit_scan(0, 4, lambda d: ran.append(1))

        def proc():
            try:
                yield done
            except DeviceFailed:
                return "aborted"
            return "completed"

        p = w.sim.spawn(proc())
        assert nvme.abort_all() == 1
        w.run()
        assert p.value == "aborted"
        assert ran == []  # an aborted scan never runs its program

    def test_scan_survives_ctrl_failure_window(self):
        """The retry ladder re-runs the deferred program at success."""
        plan = FaultPlan(seed=3).nvme_ctrl_fail("h.nvme0", 0, 150_000)
        w, nvme = make_nvme(plan)

        def proc():
            yield nvme.submit_write(0, b"\xEE" * 4096)
            count = yield nvme.submit_scan(
                0, 1, lambda data: data.count(b"\xEE"))
            return count

        p = w.sim.spawn(proc())
        w.run()
        assert p.value == 4096
        assert nvme.tracer.get("h.nvme0.timeouts") >= 1

    def test_scan_range_checked_at_submit(self):
        w, nvme = make_nvme()
        with pytest.raises(Exception):
            nvme.submit_scan(nvme.capacity_blocks, 1, lambda d: None)
