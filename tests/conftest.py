"""Shared fixtures: the simulation builders live in repro.testbed."""

import pytest

from repro.testbed import (  # noqa: F401 - re-exported for test modules
    NetHost,
    World,
    make_dpdk_libos_pair,
    make_kernel_pair,
    make_mtcp_pair,
    make_net_pair,
    make_posix_libos_pair,
    make_rdma_libos_pair,
    make_spdk_libos,
)


@pytest.fixture
def world():
    return World()


@pytest.fixture
def net_pair():
    return make_net_pair()
