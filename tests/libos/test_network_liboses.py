"""Cross-libOS tests: one Demikernel application, three library OSes.

The paper's portability claim in executable form: the same echo logic,
written once against the Figure-3 API, runs over the DPDK libOS, the
RDMA libOS, and the POSIX libOS unchanged.
"""

import pytest

from ..conftest import (
    make_dpdk_libos_pair,
    make_posix_libos_pair,
    make_rdma_libos_pair,
)

PAIR_BUILDERS = {
    "dpdk": make_dpdk_libos_pair,
    "posix": make_posix_libos_pair,
    "rdma": make_rdma_libos_pair,
}

SERVER_ADDR = {
    "dpdk": "10.0.0.2",
    "posix": "10.0.0.2",
    "rdma": "server-rdma",
}


def echo_server(libos, port=7):
    """The portable Demikernel echo server."""
    def proc():
        lqd = yield from libos.socket()
        yield from libos.bind(lqd, port)
        yield from libos.listen(lqd)
        qd = yield from libos.accept(lqd)
        while True:
            result = yield from libos.blocking_pop(qd)
            if result.error is not None:
                return result.error
            yield from libos.blocking_push(qd, result.sga)
    return proc()


def echo_client(libos, server_addr, messages, port=7):
    """The portable Demikernel echo client; returns (replies, rtts)."""
    def proc():
        qd = yield from libos.socket()
        yield from libos.connect(qd, server_addr, port)
        replies, rtts = [], []
        for message in messages:
            start = libos.sim.now
            yield from libos.blocking_push(qd, libos.sga_alloc(message))
            result = yield from libos.blocking_pop(qd)
            rtts.append(libos.sim.now - start)
            replies.append(result.sga.tobytes())
        yield from libos.close(qd)
        return replies, rtts
    return proc()


@pytest.mark.parametrize("flavor", ["dpdk", "posix", "rdma"])
class TestPortableEcho:
    def test_single_echo(self, flavor):
        w, client, server = PAIR_BUILDERS[flavor]()
        w.sim.spawn(echo_server(server))
        cp = w.sim.spawn(echo_client(client, SERVER_ADDR[flavor], [b"ping"]))
        w.run()
        replies, _ = cp.value
        assert replies == [b"ping"]

    def test_many_messages_in_order(self, flavor):
        w, client, server = PAIR_BUILDERS[flavor]()
        messages = [b"msg-%03d" % i for i in range(20)]
        w.sim.spawn(echo_server(server))
        cp = w.sim.spawn(echo_client(client, SERVER_ADDR[flavor], messages))
        w.run()
        replies, _ = cp.value
        assert replies == messages

    def test_large_elements_stay_atomic(self, flavor):
        w, client, server = PAIR_BUILDERS[flavor]()
        messages = [bytes([i]) * 4000 for i in range(5)]
        w.sim.spawn(echo_server(server))
        cp = w.sim.spawn(echo_client(client, SERVER_ADDR[flavor], messages))
        w.run()
        replies, _ = cp.value
        assert replies == messages


class TestLatencyOrdering:
    def test_kernel_bypass_beats_posix(self):
        """Figure 1's gap, measured."""
        def rtt_of(flavor):
            w, client, server = PAIR_BUILDERS[flavor]()
            w.sim.spawn(echo_server(server))
            cp = w.sim.spawn(echo_client(client, SERVER_ADDR[flavor],
                                         [b"x" * 64] * 10))
            w.run()
            _, rtts = cp.value
            return sum(rtts[1:]) / len(rtts[1:])  # skip warmup (ARP etc.)

        posix_rtt = rtt_of("posix")
        dpdk_rtt = rtt_of("dpdk")
        rdma_rtt = rtt_of("rdma")
        assert dpdk_rtt * 3 < posix_rtt
        assert rdma_rtt * 3 < posix_rtt


class TestDpdkSpecifics:
    def test_udp_echo_roundtrip(self):
        w, client, server = make_dpdk_libos_pair()

        def server_proc():
            qd = yield from server.socket("udp")
            yield from server.bind(qd, 53)
            result = yield from server.blocking_pop(qd)
            src = result.value
            token = server.push_to(qd, result.sga, src)
            yield from server.wait(token)

        def client_proc():
            qd = yield from client.socket("udp")
            yield from client.connect(qd, "10.0.0.2", 53)
            yield from client.blocking_push(qd, client.sga_alloc(b"datagram"))
            result = yield from client.blocking_pop(qd)
            return result.sga.tobytes()

        w.sim.spawn(server_proc())
        cp = w.sim.spawn(client_proc())
        w.run()
        assert cp.value == b"datagram"

    def test_udp_oversized_element_rejected(self):
        w, client, _server = make_dpdk_libos_pair()

        def proc():
            qd = yield from client.socket("udp")
            yield from client.connect(qd, "10.0.0.2", 53)
            result = yield from client.blocking_push(
                qd, client.sga_alloc(b"x" * 3000))
            return result.error

        p = w.sim.spawn(proc())
        w.run()
        assert p.value == "element exceeds MTU"

    def test_no_copies_charged_on_datapath(self):
        """Zero-copy: the DPDK libOS never charges a user<->kernel copy."""
        w, client, server = make_dpdk_libos_pair()
        w.sim.spawn(echo_server(server))
        cp = w.sim.spawn(echo_client(client, "10.0.0.2", [b"z" * 4096] * 5))
        w.run()
        # The kernel-copy counters simply do not exist on this path.
        copies = [v for k, v in w.tracer.counters.items()
                  if "bytes_copied" in k]
        assert copies == []

    def test_push_validates_iommu_registration(self):
        w, client, server = make_dpdk_libos_pair()
        w.sim.spawn(echo_server(server))

        def proc():
            qd = yield from client.socket()
            yield from client.connect(qd, "10.0.0.2", 7)
            sga = client.sga_alloc(b"registered fine")
            result = yield from client.blocking_push(qd, sga)
            return result.ok

        cp = w.sim.spawn(proc())
        w.run()
        assert cp.value
        assert w.tracer.get("client.dpdk0.iommu.translations") > 0

    def test_eof_after_peer_close(self):
        w, client, server = make_dpdk_libos_pair()

        def server_proc():
            lqd = yield from server.socket()
            yield from server.bind(lqd, 7)
            yield from server.listen(lqd)
            qd = yield from server.accept(lqd)
            result = yield from server.blocking_pop(qd)
            return result.error

        def client_proc():
            qd = yield from client.socket()
            yield from client.connect(qd, "10.0.0.2", 7)
            yield from client.close(qd)

        sp = w.sim.spawn(server_proc())
        w.sim.spawn(client_proc())
        w.run()
        assert sp.value == "eof"


class TestRdmaSpecifics:
    def test_no_rnr_naks_thanks_to_flow_control(self):
        """The libOS's credits keep the receiver stocked: zero RNR NAKs
        even when the sender bursts past the buffer pool size."""
        from repro.libos.rdma_libos import POOL_BUFFERS
        w, client, server = make_rdma_libos_pair()
        n_messages = POOL_BUFFERS * 3

        def server_proc():
            lqd = yield from server.socket()
            yield from server.bind(lqd, 1)
            yield from server.listen(lqd)
            qd = yield from server.accept(lqd)
            got = 0
            while got < n_messages:
                result = yield from server.blocking_pop(qd)
                assert result.ok
                got += 1
            return got

        def client_proc():
            qd = yield from client.socket()
            yield from client.connect(qd, "server-rdma", 1)
            tokens = [client.push(qd, client.sga_alloc(b"m%04d" % i))
                      for i in range(n_messages)]
            yield from client.wait_all(tokens)

        sp = w.sim.spawn(server_proc())
        w.sim.spawn(client_proc())
        w.run()
        assert sp.value == n_messages
        assert w.tracer.get("server.rdma0.rnr_naks_sent") == 0
        assert w.tracer.get("client.catmint.flow_control_stalls") > 0

    def test_oversized_element_rejected(self):
        from repro.libos.rdma_libos import POOL_BUFFER_SIZE
        w, client, server = make_rdma_libos_pair()

        def server_proc():
            lqd = yield from server.socket()
            yield from server.bind(lqd, 1)
            yield from server.listen(lqd)
            yield from server.accept(lqd)

        def client_proc():
            qd = yield from client.socket()
            yield from client.connect(qd, "server-rdma", 1)
            result = yield from client.blocking_push(
                qd, client.sga_alloc(b"x" * (POOL_BUFFER_SIZE + 1)))
            return result.error

        w.sim.spawn(server_proc())
        cp = w.sim.spawn(client_proc())
        w.run()
        assert cp.value == "element exceeds pool buffer size"

    def test_credits_replenish(self):
        from repro.libos.rdma_libos import POOL_BUFFERS
        w, client, server = make_rdma_libos_pair()

        def server_proc():
            lqd = yield from server.socket()
            yield from server.bind(lqd, 1)
            yield from server.listen(lqd)
            qd = yield from server.accept(lqd)
            for _ in range(POOL_BUFFERS * 2):
                yield from server.blocking_pop(qd)

        def client_proc():
            qd = yield from client.socket()
            yield from client.connect(qd, "server-rdma", 1)
            for i in range(POOL_BUFFERS * 2):
                yield from client.blocking_push(
                    qd, client.sga_alloc(b"payload"))

        w.sim.spawn(server_proc())
        w.sim.spawn(client_proc())
        w.run()
        assert w.tracer.get("server.catmint.credit_returns_sent") >= 2
        assert w.tracer.get("client.catmint.credit_returns_received") >= 2


class TestPosixSpecifics:
    def test_posix_path_pays_syscalls_and_copies(self):
        w, client, server = make_posix_libos_pair()
        w.sim.spawn(echo_server(server))
        cp = w.sim.spawn(echo_client(client, "10.0.0.2", [b"y" * 2048] * 3))
        w.run()
        replies, _ = cp.value
        assert len(replies) == 3
        assert w.tracer.get("client.kernel.syscalls") > 0
        assert w.tracer.get("client.kernel.bytes_copied_tx") >= 3 * 2048
