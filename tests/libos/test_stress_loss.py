"""Integration stress: full libOS stacks under packet loss and pipelining.

The reliability machinery (TCP retransmission/cwnd, RDMA NIC acks and
go-back-N) was unit-tested at its own layer; these tests drive it through
the whole Demikernel stack - application -> libOS -> protocol -> NIC ->
lossy fabric - and require end-to-end exactness.
"""

from ..conftest import make_dpdk_libos_pair, make_rdma_libos_pair


class TestDpdkUnderLoss:
    def test_echo_stream_survives_loss(self):
        w, client, server = make_dpdk_libos_pair(drop_rate=0.1, seed=21)
        from repro.apps.echo import demi_echo_client, demi_echo_server
        messages = [b"lossy-%03d" % i for i in range(30)]
        w.sim.spawn(demi_echo_server(server))
        cp = w.sim.spawn(demi_echo_client(client, "10.0.0.2", messages))
        w.sim.run_until_complete(cp, limit=10**14)
        replies, _stats = cp.value
        assert replies == messages
        assert w.tracer.get("client.catnip.stack.tcp_retransmits") + \
            w.tracer.get("server.catnip.stack.tcp_retransmits") > 0

    def test_large_elements_survive_loss(self):
        w, client, server = make_dpdk_libos_pair(drop_rate=0.08, seed=33)
        from repro.apps.echo import demi_echo_client, demi_echo_server
        messages = [bytes([i]) * 8000 for i in range(8)]
        w.sim.spawn(demi_echo_server(server))
        cp = w.sim.spawn(demi_echo_client(client, "10.0.0.2", messages))
        w.sim.run_until_complete(cp, limit=10**14)
        replies, _ = cp.value
        assert replies == messages


class TestRdmaUnderLoss:
    def test_credited_stream_survives_loss(self):
        from repro.libos.rdma_libos import POOL_BUFFERS
        w, client, server = make_rdma_libos_pair(drop_rate=0.1, seed=17)
        n = POOL_BUFFERS + 20  # crosses a credit-return boundary

        def server_proc():
            lqd = yield from server.socket()
            yield from server.bind(lqd, 1)
            yield from server.listen(lqd)
            qd = yield from server.accept(lqd)
            out = []
            for _ in range(n):
                result = yield from server.blocking_pop(qd)
                out.append(result.sga.tobytes())
            return out

        def client_proc():
            qd = yield from client.socket()
            yield from client.connect(qd, "server-rdma", 1)
            for i in range(n):
                yield from client.blocking_push(
                    qd, client.sga_alloc(b"seq-%04d" % i))

        sp = w.sim.spawn(server_proc())
        w.sim.spawn(client_proc())
        w.sim.run_until_complete(sp, limit=10**14)
        assert sp.value == [b"seq-%04d" % i for i in range(n)]
        assert (w.tracer.get("client.rdma0.retransmits")
                + w.tracer.get("server.rdma0.retransmits")) > 0


class TestPipelinedClients:
    def test_many_outstanding_operations(self):
        """8 requests in flight at once through one TCP queue."""
        w, client, server = make_dpdk_libos_pair()
        from repro.apps.echo import demi_echo_server
        w.sim.spawn(demi_echo_server(server))
        n = 64

        def pipelined_client():
            qd = yield from client.socket()
            yield from client.connect(qd, "10.0.0.2", 7)
            pop_tokens = []
            received = []
            sent = 0
            while len(received) < n:
                while sent < n and sent - len(received) < 8:
                    client.push(qd, client.sga_alloc(b"p-%03d" % sent))
                    pop_tokens.append(client.pop(qd))
                    sent += 1
                index, result = yield from client.wait_any(pop_tokens)
                pop_tokens.pop(index)
                received.append(result.sga.tobytes())
            return received

        cp = w.sim.spawn(pipelined_client())
        w.sim.run_until_complete(cp, limit=10**14)
        # TCP preserves order even with 8 outstanding.
        assert cp.value == [b"p-%03d" % i for i in range(n)]

    def test_bidirectional_simultaneous_traffic(self):
        """Both ends push and pop concurrently on one connection."""
        w, client, server = make_dpdk_libos_pair()
        n = 20

        def server_proc():
            lqd = yield from server.socket()
            yield from server.bind(lqd, 7)
            yield from server.listen(lqd)
            qd = yield from server.accept(lqd)
            got = []
            for i in range(n):
                yield from server.blocking_push(
                    qd, server.sga_alloc(b"s2c-%02d" % i))
                result = yield from server.blocking_pop(qd)
                got.append(result.sga.tobytes())
            return got

        def client_proc():
            qd = yield from client.socket()
            yield from client.connect(qd, "10.0.0.2", 7)
            got = []
            for i in range(n):
                yield from client.blocking_push(
                    qd, client.sga_alloc(b"c2s-%02d" % i))
                result = yield from client.blocking_pop(qd)
                got.append(result.sga.tobytes())
            return got

        sp = w.sim.spawn(server_proc())
        cp = w.sim.spawn(client_proc())
        w.sim.run_until_complete(cp, limit=10**14)
        w.sim.run_until_complete(sp, limit=10**14)
        assert sp.value == [b"c2s-%02d" % i for i in range(n)]
        assert cp.value == [b"s2c-%02d" % i for i in range(n)]
