"""Edge-case tests across the library OSes: errors, close paths, misuse."""

import pytest

from repro.core.types import DemiError

from ..conftest import (
    make_dpdk_libos_pair,
    make_mtcp_pair,
    make_posix_libos_pair,
    make_rdma_libos_pair,
)


def run(w, gen, limit=10**12):
    p = w.sim.spawn(gen)
    w.sim.run_until_complete(p, limit=limit)
    return p.value


class TestDpdkEdges:
    def test_unknown_protocol_rejected(self):
        w, client, _server = make_dpdk_libos_pair()

        def proc():
            with pytest.raises(DemiError):
                yield from client.socket("sctp")
            return "checked"

        assert run(w, proc()) == "checked"

    def test_push_before_connect_errors(self):
        w, client, _server = make_dpdk_libos_pair()

        def proc():
            qd = yield from client.socket()
            result = yield from client.blocking_push(
                qd, client.sga_alloc(b"x"))
            return result.error

        assert run(w, proc()) == "not connected"

    def test_udp_push_without_remote_errors(self):
        w, client, _server = make_dpdk_libos_pair()

        def proc():
            qd = yield from client.socket("udp")
            result = yield from client.blocking_push(
                qd, client.sga_alloc(b"x"))
            return result.error

        assert run(w, proc()) == "no remote address"

    def test_push_to_on_tcp_rejected(self):
        w, client, _server = make_dpdk_libos_pair()

        def proc():
            qd = yield from client.socket("tcp")
            with pytest.raises(DemiError):
                client.push_to(qd, client.sga_alloc(b"x"), ("10.0.0.2", 1))
            return "checked"

        assert run(w, proc()) == "checked"

    def test_push_on_listening_queue_errors(self):
        w, _client, server = make_dpdk_libos_pair()

        def proc():
            qd = yield from server.socket()
            yield from server.bind(qd, 80)
            yield from server.listen(qd)
            result = yield from server.blocking_push(
                qd, server.sga_alloc(b"x"))
            return result.error

        assert run(w, proc()) == "push on listening queue"

    def test_listen_without_bind_rejected(self):
        w, _client, server = make_dpdk_libos_pair()

        def proc():
            qd = yield from server.socket()
            with pytest.raises(DemiError):
                yield from server.listen(qd)
            return "checked"

        assert run(w, proc()) == "checked"

    def test_accept_on_connected_queue_rejected(self):
        w, client, server = make_dpdk_libos_pair()

        def server_proc():
            qd = yield from server.socket()
            yield from server.bind(qd, 80)
            yield from server.listen(qd)
            yield from server.accept(qd)

        def client_proc():
            qd = yield from client.socket()
            yield from client.connect(qd, "10.0.0.2", 80)
            with pytest.raises(DemiError):
                yield from client.accept(qd)
            return "checked"

        w.sim.spawn(server_proc())
        assert run(w, client_proc()) == "checked"

    def test_close_listening_queue_releases_port(self):
        w, _client, server = make_dpdk_libos_pair()

        def proc():
            qd = yield from server.socket()
            yield from server.bind(qd, 80)
            yield from server.listen(qd)
            yield from server.close(qd)
            # Port 80 is free again:
            qd2 = yield from server.socket()
            yield from server.bind(qd2, 80)
            yield from server.listen(qd2)
            return "rebound"

        assert run(w, proc()) == "rebound"


class TestRdmaEdges:
    def test_push_before_connect_errors(self):
        w, client, _server = make_rdma_libos_pair()

        def proc():
            qd = yield from client.socket()
            result = yield from client.blocking_push(
                qd, client.sga_alloc(b"x"))
            return result.error

        assert run(w, proc()) == "not connected"

    def test_connect_refused_without_listener(self):
        from repro.rdma.verbs import VerbsError
        w, client, _server = make_rdma_libos_pair()

        def proc():
            qd = yield from client.socket()
            with pytest.raises(VerbsError):
                yield from client.connect(qd, "server-rdma", 99)
            return "checked"

        assert run(w, proc()) == "checked"

    def test_close_connected_queue(self):
        w, client, server = make_rdma_libos_pair()

        def server_proc():
            lqd = yield from server.socket()
            yield from server.bind(lqd, 1)
            yield from server.listen(lqd)
            yield from server.accept(lqd)

        def client_proc():
            qd = yield from client.socket()
            yield from client.connect(qd, "server-rdma", 1)
            yield from client.close(qd)
            with pytest.raises(DemiError):
                client.pop(qd)
            return "checked"

        w.sim.spawn(server_proc())
        assert run(w, client_proc()) == "checked"


class TestPosixLibosEdges:
    def test_only_tcp_supported(self):
        w, client, _server = make_posix_libos_pair()

        def proc():
            with pytest.raises(DemiError):
                yield from client.socket("udp")
            return "checked"

        assert run(w, proc()) == "checked"

    def test_push_before_connect_errors(self):
        w, client, _server = make_posix_libos_pair()

        def proc():
            qd = yield from client.socket()
            result = yield from client.blocking_push(
                qd, client.sga_alloc(b"x"))
            return result.error

        assert run(w, proc()) == "not connected"


class TestMtcpEdges:
    def test_exchange_waits_for_cycle_boundary(self):
        w, client, _server = make_mtcp_pair()
        cycle = w.costs.mtcp_cycle_ns

        def proc():
            start = w.sim.now
            yield from client._exchange()
            return w.sim.now - start

        p = w.sim.spawn(proc())
        w.sim.run_until_complete(p, limit=10**12)
        # Hop + wait-to-boundary + hop; at t=0 the wait is a full cycle.
        assert p.value >= cycle

    def test_recv_after_close_returns_empty(self):
        w, client, server = make_mtcp_pair()

        def server_proc():
            listener = server.listen(7)
            conn = yield from server.accept(listener)
            yield from conn.close()

        def client_proc():
            conn = yield from client.connect("10.0.0.2", 7)
            data = yield from conn.recv()
            return data

        w.sim.spawn(server_proc())
        assert run(w, client_proc()) == b""
