"""Adaptive poll/interrupt policy and batch-counter reconciliation.

The DPDK driver with a ``spin_budget_ns`` lives in two regimes:

* under load, frames land inside the spin window - the wake is a
  ``poll_spin_wakes`` and costs only the elapsed spin cycles;
* idle past the budget, the driver counts ``poll_irq_arms``, blocks,
  and the next burst delivers exactly one ``poll_irq_wakeups`` no
  matter how many frames it carries.

The reconciliation tests pin the batched datapath's bookkeeping:
every frame the libOS posts is covered by exactly one doorbell or a
``doorbells_saved`` credit, and every frame the stack consumed came in
through a counted burst.
"""

from repro.testbed import make_dpdk_libos_pair

US = 1_000
MS = 1_000_000

MESSAGES = [b"m%02d" % i * 8 for i in range(8)]


def _echo_once(w, client, server, idle_ns=0, n_messages=8):
    """Connect, optionally sit idle, then pipeline a burst of pushes."""
    messages = MESSAGES[:n_messages]

    def server_proc():
        lqd = yield from server.socket()
        yield from server.bind(lqd, 7)
        yield from server.listen(lqd)
        qd = yield from server.accept(lqd)
        out = []
        for _ in messages:
            result = yield from server.blocking_pop(qd)
            out.append(result.sga.tobytes())
        return out

    def client_proc():
        qd = yield from client.socket()
        yield from client.connect(qd, "10.0.0.2", 7)
        if idle_ns:
            yield client.sim.timeout(idle_ns)
        tokens = [client.push(qd, client.sga_alloc(m)) for m in messages]
        yield from client.wait_all(tokens)

    sp = w.sim.spawn(server_proc())
    w.sim.spawn(client_proc())
    w.sim.run_until_complete(sp, limit=10**14)
    assert sp.value == messages


class TestPollInterruptTransitions:
    def test_loaded_traffic_stays_in_spin_regime(self):
        # A closed-loop exchange has ~7 us gaps; a 1 ms budget means the
        # driver never exhausts its spin and never pays an interrupt.
        w, client, server = make_dpdk_libos_pair(batching=True,
                                                 spin_budget_ns=1 * MS)
        _echo_once(w, client, server)
        assert w.tracer.get("server.catnip.poll_spin_wakes") > 0
        assert w.tracer.get("server.catnip.poll_irq_wakeups") == 0

    def test_spin_budget_exhaustion_arms_interrupt(self):
        # A 5 us budget against a 500 us idle gap: the server driver
        # must fall out of the spin loop and arm the NIC interrupt.
        w, client, server = make_dpdk_libos_pair(batching=True,
                                                 spin_budget_ns=5 * US)
        _echo_once(w, client, server, idle_ns=500 * US)
        arms = w.tracer.get("server.catnip.poll_irq_arms")
        wakeups = w.tracer.get("server.catnip.poll_irq_wakeups")
        assert arms >= 1
        assert wakeups >= 1
        # Every wake-up was preceded by an arm; at most one arm is still
        # pending (the driver parked when the run ended).
        assert 0 <= arms - wakeups <= 1

    def test_burst_while_armed_wakes_exactly_once(self):
        # One long idle window, then a pipelined 8-message burst.  The
        # 50 us budget absorbs every in-exchange gap (handshake, ACKs),
        # so the *only* interrupt the server ever takes is the single
        # coalesced one that ends the idle window - 8 frames, one wake.
        w, client, server = make_dpdk_libos_pair(batching=True,
                                                 spin_budget_ns=50 * US)
        _echo_once(w, client, server, idle_ns=2 * MS)
        assert w.tracer.get("server.catnip.poll_irq_wakeups") == 1
        assert w.tracer.get("server.catnip.poll_spin_wakes") > 0

    def test_interrupt_path_off_without_budget(self):
        w, client, server = make_dpdk_libos_pair(batching=True)
        _echo_once(w, client, server, idle_ns=500 * US)
        for side in ("client", "server"):
            assert w.tracer.get("%s.catnip.poll_spin_wakes" % side) == 0
            assert w.tracer.get("%s.catnip.poll_irq_arms" % side) == 0
            assert w.tracer.get("%s.catnip.poll_irq_wakeups" % side) == 0


class TestCounterReconciliation:
    def test_doorbells_cover_every_posted_frame(self):
        w, client, server = make_dpdk_libos_pair(batching=True)
        _echo_once(w, client, server)
        for side, nic in (("client", "dpdk0"), ("server", "dpdk0")):
            posted = w.tracer.get("%s.%s.tx_frames" % (side, nic))
            doorbells = w.tracer.get("%s.catnip.doorbells" % side)
            saved = w.tracer.get("%s.catnip.doorbells_saved" % side)
            assert posted > 0
            assert doorbells + saved == posted, (
                "%s: %d doorbells + %d saved != %d frames posted"
                % (side, doorbells, saved, posted))
            # With batching, every post goes through the burst path.
            assert w.tracer.get("%s.%s.tx_burst_frames"
                                % (side, nic)) == posted

    def test_coalescing_saves_doorbells_on_pipelined_bursts(self):
        w, client, server = make_dpdk_libos_pair(batching=True)
        _echo_once(w, client, server)
        assert w.tracer.get("client.catnip.doorbells_saved") > 0

    def test_burst_frames_reconcile_with_stack_deliveries(self):
        w, client, server = make_dpdk_libos_pair(batching=True)
        _echo_once(w, client, server)
        for side in ("client", "server"):
            delivered = w.tracer.get("%s.catnip.stack.rx_frames" % side)
            via_bursts = w.tracer.get(
                "%s.catnip.stack.rx_burst_frames" % side)
            assert delivered > 0
            assert via_bursts == delivered

    def test_singleton_path_posts_one_doorbell_per_frame(self):
        w, client, server = make_dpdk_libos_pair(batching=False)
        _echo_once(w, client, server)
        for side in ("client", "server"):
            posted = w.tracer.get("%s.dpdk0.tx_frames" % side)
            doorbells = w.tracer.get("%s.catnip.doorbells" % side)
            assert doorbells == posted
            assert w.tracer.get("%s.catnip.doorbells_saved" % side) == 0
