"""Anchors for EXPERIMENTS.md: the simulation is deterministic, so the
headline numbers recorded in the document must keep reproducing.  If a
cost-model or protocol change moves them, this test fails and the
document must be re-recorded - no silent doc rot.
"""

import pytest

from repro.bench.runners import echo_rtt
from repro.sim.costs import DEFAULT_COSTS


class TestRecordedAnchors:
    def test_kernel_echo_rtt_as_documented(self):
        # EXPERIMENTS.md FIG1: kernel RTT at 64 B = 24.25 us.
        result = echo_rtt("posix", message_size=64)
        assert result["rtt_mean_ns"] == pytest.approx(24_250, rel=0.02)

    def test_dpdk_echo_rtt_as_documented(self):
        # EXPERIMENTS.md FIG1: bypass RTT at 64 B = 5.97 us.
        result = echo_rtt("dpdk", message_size=64)
        assert result["rtt_mean_ns"] == pytest.approx(5_970, rel=0.02)

    def test_rdma_echo_rtt_as_documented(self):
        # EXPERIMENTS.md FIG2: catmint data path = 3.98 us.
        result = echo_rtt("rdma", message_size=64)
        assert result["rtt_mean_ns"] == pytest.approx(3_980, rel=0.02)

    def test_mtcp_echo_rtt_as_documented(self):
        # EXPERIMENTS.md C5: mTCP shim at 64 B = 40.0 us.
        result = echo_rtt("mtcp", message_size=64)
        assert result["rtt_mean_ns"] == pytest.approx(40_000, rel=0.02)

    def test_copy_anchor_as_documented(self):
        # EXPERIMENTS.md C2: 4 KB copy = 1.04 us.
        assert DEFAULT_COSTS.copy_ns(4096) == 1040

    def test_speedup_band_as_documented(self):
        # EXPERIMENTS.md FIG1: 4-6x across the size sweep.
        small = echo_rtt("posix", 64)["rtt_mean_ns"] / \
            echo_rtt("dpdk", 64)["rtt_mean_ns"]
        large = echo_rtt("posix", 8192)["rtt_mean_ns"] / \
            echo_rtt("dpdk", 8192)["rtt_mean_ns"]
        assert 3.5 < small < 5.0
        assert 5.5 < large < 8.0
